// End-to-end integration: geo-distributed MRP-Store across four simulated
// regions (the paper's Figure 7 topology), dLog with mixed workloads, and a
// full crash/recover schedule against a loaded store.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "coord/registry.hpp"
#include "mrpstore/client.hpp"
#include "mrpstore/store.hpp"
#include "dlog/client.hpp"
#include "dlog/dlog.hpp"
#include "sim/env.hpp"
#include "smr/client.hpp"
#include "smr/replica.hpp"

namespace mrp {
namespace {

/// EC2-like one-way latencies between regions (ms):
/// 0=eu-west, 1=us-east, 2=us-west-1, 3=us-west-2.
void configure_wan(sim::Env& env) {
  env.net().set_site_local_latency(0, from_micros(50));
  env.net().set_site_local_latency(1, from_micros(50));
  env.net().set_site_local_latency(2, from_micros(50));
  env.net().set_site_local_latency(3, from_micros(50));
  env.net().set_site_latency(0, 1, from_millis(40));
  env.net().set_site_latency(0, 2, from_millis(70));
  env.net().set_site_latency(0, 3, from_millis(65));
  env.net().set_site_latency(1, 2, from_millis(35));
  env.net().set_site_latency(1, 3, from_millis(30));
  env.net().set_site_latency(2, 3, from_millis(10));
  env.net().set_site_bandwidth(1e9);
}

TEST(GeoIntegration, StoreAcrossFourRegions) {
  sim::Env env(404);
  coord::Registry registry(env, 200 * kMillisecond);
  configure_wan(env);

  mrpstore::StoreOptions so;
  so.partitions = 4;
  so.replicas_per_partition = 3;
  so.global_ring = true;
  so.sites = {0, 1, 2, 3};  // one partition per region
  // WAN configuration from the paper: M=1, Delta=20ms, lambda=2000.
  so.ring_params.lambda = 2000;
  so.ring_params.skip_interval = 20 * kMillisecond;
  so.ring_params.gap_timeout = 200 * kMillisecond;
  so.global_params = so.ring_params;
  auto dep = mrpstore::build_store(env, registry, so);
  mrpstore::StoreClient helper(dep);

  // One client per region, writing region-local keys.
  std::vector<smr::ClientNode*> clients;
  for (int region = 0; region < 4; ++region) {
    const ProcessId cpid = 800 + region;
    env.net().set_site(cpid, region);
    auto* c = env.spawn<smr::ClientNode>(
        cpid, smr::ClientNode::Options{4, 5 * kSecond, 0},
        smr::ClientNode::NextFn(
            [&helper, &dep, region, n = 0](std::uint32_t) mutable
            -> std::optional<smr::Request> {
              // Address the region's own partition directly (clients know
              // the schema; here we pick keys by partition explicitly).
              const std::string key =
                  "r" + std::to_string(region) + "k" + std::to_string(n++);
              smr::Request r;
              r.sends.push_back(smr::Request::Send{
                  dep.partition_groups[static_cast<std::size_t>(region)],
                  dep.replicas[static_cast<std::size_t>(region)]});
              mrpstore::Op op;
              op.type = mrpstore::OpType::kInsert;
              op.key = key;
              op.value = to_bytes("v");
              r.op = mrpstore::encode_op(op);
              return r;
            }),
        smr::ClientNode::DoneFn(nullptr));
    clients.push_back(c);
  }
  env.sim().run_for(from_seconds(20));
  for (auto* c : clients) c->stop();
  env.sim().run_for(from_seconds(5));

  // Every region made progress.
  for (int region = 0; region < 4; ++region) {
    EXPECT_GT(clients[static_cast<std::size_t>(region)]->completed(), 100u)
        << "region " << region << " starved";
  }
  // All replicas of each partition converge.
  for (std::size_t p = 0; p < 4; ++p) {
    std::uint64_t d0 = 0;
    for (std::size_t r = 0; r < 3; ++r) {
      auto* rep = env.process_as<smr::ReplicaNode>(dep.replicas[p][r]);
      auto& kv =
          dynamic_cast<mrpstore::KvStateMachine&>(rep->state_machine());
      if (r == 0) {
        d0 = kv.digest();
      } else {
        EXPECT_EQ(kv.digest(), d0);
      }
    }
  }
}

TEST(GeoIntegration, GlobalScanIsConsistentUnderConcurrentWrites) {
  sim::Env env(405);
  coord::Registry registry(env, 100 * kMillisecond);

  mrpstore::StoreOptions so;
  so.partitions = 3;
  so.global_ring = true;
  so.ring_params.lambda = 5000;
  so.ring_params.skip_interval = 5 * kMillisecond;
  so.global_params = so.ring_params;
  auto dep = mrpstore::build_store(env, registry, so);
  mrpstore::StoreClient helper(dep);

  // Sequential consistency (Section 6.1): one session inserts a#i, then
  // b#i (different partitions), then scans. The session's operations are
  // non-overlapping and ordered, so each scan must observe every pair it
  // issued before — never b#i without a#i. (A real-time guarantee across
  // *different* clients is not promised and not tested.)
  int violations = 0;
  int scans = 0;
  env.spawn<smr::ClientNode>(
      850, smr::ClientNode::Options{1, 5 * kSecond, 0},
      smr::ClientNode::NextFn(
          [&helper, n = 0](std::uint32_t) mutable
          -> std::optional<smr::Request> {
            const int phase = n % 3;
            const int i = n / 3;
            ++n;
            if (phase == 0) return helper.insert("a" + std::to_string(i), to_bytes("x"));
            if (phase == 1) return helper.insert("b" + std::to_string(i), to_bytes("x"));
            return helper.scan("", "", 0);
          }),
      smr::ClientNode::DoneFn([&](const smr::Completion& c) {
        if (c.results.size() < 3) return;  // not a scan
        ++scans;
        auto merged = mrpstore::StoreClient::merge_scan(c.results);
        std::set<std::string> keys;
        for (auto& [k, v] : merged.entries) keys.insert(k);
        for (const auto& k : keys) {
          if (k[0] == 'b' && !keys.count("a" + k.substr(1))) ++violations;
        }
      }));
  env.sim().run_for(from_seconds(10));
  EXPECT_GT(scans, 5);
  EXPECT_EQ(violations, 0)
      << "scan observed b#i without a#i despite session order";
}

TEST(GeoIntegration, DlogMixedWorkloadWithCrash) {
  sim::Env env(406);
  coord::Registry registry(env, 50 * kMillisecond);

  dlog::DLogOptions opts;
  opts.num_logs = 3;
  opts.ring_params.lambda = 3000;
  opts.ring_params.skip_interval = 5 * kMillisecond;
  opts.ring_params.gap_timeout = 20 * kMillisecond;
  opts.common_params = opts.ring_params;
  opts.replica_options.checkpoint.interval = 500 * kMillisecond;
  opts.replica_options.trim.interval = kSecond;
  auto dep = dlog::build_dlog(env, registry, opts);
  dlog::DLogClient client(dep);

  Rng rng(17);
  auto* c = env.spawn<smr::ClientNode>(
      860, smr::ClientNode::Options{8, 2 * kSecond, 0},
      smr::ClientNode::NextFn(
          [&client, &rng](std::uint32_t) -> std::optional<smr::Request> {
            const auto pick = rng.next_below(10);
            if (pick < 7) {
              return client.append(
                  static_cast<dlog::LogId>(rng.next_below(3)),
                  Bytes(128, 0x5a));
            }
            if (pick < 9) {
              return client.multi_append({0, 1, 2}, Bytes(128, 0x5b));
            }
            return client.read(static_cast<dlog::LogId>(rng.next_below(3)),
                               rng.next_below(50));
          }),
      smr::ClientNode::DoneFn(nullptr));

  env.sim().run_for(from_seconds(3));
  env.crash(dep.servers[2]);
  env.sim().run_for(from_seconds(3));
  env.recover(dep.servers[2]);
  env.sim().run_for(from_seconds(4));
  c->stop();
  env.sim().run_for(from_seconds(3));

  EXPECT_GT(c->completed(), 500u);
  auto digest = [&](std::size_t s) {
    auto* rep = env.process_as<smr::ReplicaNode>(dep.servers[s]);
    return dynamic_cast<dlog::LogStateMachine&>(rep->state_machine())
        .digest();
  };
  EXPECT_EQ(digest(0), digest(1));
  EXPECT_EQ(digest(0), digest(2)) << "recovered dlog server diverged";
}

TEST(GeoIntegration, StoreSurvivesRollingRestarts) {
  sim::Env env(407);
  coord::Registry registry(env, 50 * kMillisecond);

  mrpstore::StoreOptions so;
  so.partitions = 2;
  so.global_ring = false;
  so.ring_params.gap_timeout = 20 * kMillisecond;
  so.replica_options.checkpoint.interval = 400 * kMillisecond;
  so.replica_options.trim.interval = 800 * kMillisecond;
  auto dep = mrpstore::build_store(env, registry, so);
  mrpstore::StoreClient helper(dep);

  auto* c = env.spawn<smr::ClientNode>(
      870, smr::ClientNode::Options{4, 2 * kSecond, 0},
      smr::ClientNode::NextFn(
          [&helper, n = 0](std::uint32_t) mutable
          -> std::optional<smr::Request> {
            const int key = n % 100;
            ++n;
            return helper.insert("roll" + std::to_string(key),
                                 to_bytes(std::to_string(n)));
          }),
      smr::ClientNode::DoneFn(nullptr));

  // Rolling restart: every replica of partition 0 crashes and recovers in
  // sequence, never two at once.
  for (std::size_t r = 0; r < 3; ++r) {
    env.sim().run_for(from_seconds(2));
    env.crash(dep.replicas[0][r]);
    env.sim().run_for(from_seconds(2));
    env.recover(dep.replicas[0][r]);
  }
  env.sim().run_for(from_seconds(4));
  c->stop();
  env.sim().run_for(from_seconds(3));

  EXPECT_GT(c->completed(), 1000u);
  std::uint64_t d0 = 0;
  for (std::size_t r = 0; r < 3; ++r) {
    auto* rep = env.process_as<smr::ReplicaNode>(dep.replicas[0][r]);
    auto& kv = dynamic_cast<mrpstore::KvStateMachine&>(rep->state_machine());
    if (r == 0) {
      d0 = kv.digest();
    } else {
      EXPECT_EQ(kv.digest(), d0) << "replica " << r << " diverged";
    }
  }
}

}  // namespace
}  // namespace mrp
