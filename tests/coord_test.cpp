#include <gtest/gtest.h>

#include <memory>

#include "coord/registry.hpp"
#include "sim/env.hpp"

namespace mrp::coord {
namespace {

class Dummy : public sim::Process {
 public:
  using Process::Process;
  void on_message(ProcessId, const sim::Message& m) override {
    if (m.kind() == kMsgViewChange) {
      views.push_back(sim::msg_cast<MsgViewChange>(m).view);
    }
  }
  std::vector<RingView> views;
};

class RegistryTest : public ::testing::Test {
 protected:
  void spawn(std::initializer_list<ProcessId> pids) {
    for (ProcessId p : pids) env_.spawn<Dummy>(p);
  }
  RingConfig config3() {
    RingConfig c;
    c.ring = 0;
    c.order = {1, 2, 3};
    c.acceptors = {1, 2, 3};
    return c;
  }

  sim::Env env_;
  Registry reg_{env_, 50 * kMillisecond};
};

TEST_F(RegistryTest, InitialViewIncludesAllConfiguredMembers) {
  spawn({1, 2, 3});
  reg_.create_ring(config3());
  const RingView& v = reg_.current_view(0);
  EXPECT_EQ(v.epoch, 1u);
  EXPECT_EQ(v.members.size(), 3u);
  EXPECT_EQ(v.coordinator, 1);
  EXPECT_EQ(v.quorum(), 2u);
}

TEST_F(RegistryTest, SuccessorWraps) {
  spawn({1, 2, 3});
  reg_.create_ring(config3());
  const RingView& v = reg_.current_view(0);
  EXPECT_EQ(v.successor(1), 2);
  EXPECT_EQ(v.successor(2), 3);
  EXPECT_EQ(v.successor(3), 1);
}

TEST_F(RegistryTest, CrashDetectedAndViewChanges) {
  spawn({1, 2, 3});
  reg_.create_ring(config3());
  env_.crash(2);
  env_.sim().run_for(from_millis(120));
  const RingView& v = reg_.current_view(0);
  EXPECT_EQ(v.members.size(), 2u);
  EXPECT_FALSE(v.contains(2));
  EXPECT_GT(v.epoch, 1u);
  EXPECT_EQ(v.successor(1), 3);
}

TEST_F(RegistryTest, CoordinatorElectionSkipsDeadAcceptor) {
  spawn({1, 2, 3});
  reg_.create_ring(config3());
  env_.crash(1);
  env_.sim().run_for(from_millis(120));
  EXPECT_EQ(reg_.current_view(0).coordinator, 2);
}

TEST_F(RegistryTest, CoordinatorIsSticky) {
  spawn({1, 2, 3});
  reg_.create_ring(config3());
  env_.crash(1);
  env_.sim().run_for(from_millis(120));
  EXPECT_EQ(reg_.current_view(0).coordinator, 2);
  env_.recover(1);
  env_.sim().run_for(from_millis(120));
  // 1 rejoined but 2 keeps the coordinatorship.
  EXPECT_EQ(reg_.current_view(0).coordinator, 2);
  EXPECT_TRUE(reg_.current_view(0).contains(1));
}

TEST_F(RegistryTest, EpochsIncreaseMonotonically) {
  spawn({1, 2, 3});
  reg_.create_ring(config3());
  std::uint64_t last = reg_.current_view(0).epoch;
  for (int i = 0; i < 3; ++i) {
    env_.crash(3);
    env_.sim().run_for(from_millis(120));
    EXPECT_GT(reg_.current_view(0).epoch, last);
    last = reg_.current_view(0).epoch;
    env_.recover(3);
    env_.sim().run_for(from_millis(120));
    EXPECT_GT(reg_.current_view(0).epoch, last);
    last = reg_.current_view(0).epoch;
  }
}

TEST_F(RegistryTest, WatchersAreNotifiedOfChanges) {
  spawn({1, 2, 3});
  reg_.create_ring(config3());
  reg_.watch_ring(0, 3);
  env_.sim().run_for(from_millis(10));
  auto* d = env_.process_as<Dummy>(3);
  ASSERT_EQ(d->views.size(), 1u);  // initial view on watch
  env_.crash(2);
  env_.sim().run_for(from_millis(200));
  ASSERT_GE(d->views.size(), 2u);
  EXPECT_FALSE(d->views.back().contains(2));
}

TEST_F(RegistryTest, RecoveredWatcherIsRenotified) {
  spawn({1, 2, 3});
  reg_.create_ring(config3());
  reg_.watch_ring(0, 3);
  env_.sim().run_for(from_millis(10));
  env_.crash(3);
  env_.sim().run_for(from_millis(200));
  env_.recover(3);
  env_.sim().run_for(from_millis(200));
  auto* d = env_.process_as<Dummy>(3);  // fresh incarnation
  ASSERT_GE(d->views.size(), 1u);
  EXPECT_TRUE(d->views.back().contains(3));
}

TEST_F(RegistryTest, SubscriptionsAndPartitions) {
  spawn({1, 2, 3, 4});
  reg_.set_subscriptions(1, {0, 7});
  reg_.set_subscriptions(2, {0, 7});
  reg_.set_subscriptions(3, {7});
  reg_.set_subscriptions(4, {0, 7});
  auto subs = reg_.subscribers(7);
  EXPECT_EQ(subs.size(), 4u);
  auto peers = reg_.partition_peers(1);
  EXPECT_EQ(peers, (std::vector<ProcessId>{1, 2, 4}));
  EXPECT_EQ(reg_.partition_peers(3), std::vector<ProcessId>{3});
}

TEST_F(RegistryTest, MetadataRoundtrip) {
  reg_.set_meta("schema", "hash:3");
  EXPECT_EQ(reg_.get_meta("schema"), "hash:3");
  EXPECT_EQ(reg_.get_meta("absent"), "");
}

TEST_F(RegistryTest, QuorumBasedOnConfiguredAcceptors) {
  spawn({1, 2, 3});
  reg_.create_ring(config3());
  env_.crash(2);
  env_.crash(3);
  env_.sim().run_for(from_millis(120));
  // One alive acceptor out of three configured: quorum stays 2.
  EXPECT_EQ(reg_.current_view(0).quorum(), 2u);
  EXPECT_EQ(reg_.current_view(0).acceptors.size(), 1u);
}

}  // namespace
}  // namespace mrp::coord
