#include <gtest/gtest.h>

#include <memory>

#include "coord/registry.hpp"
#include "sim/env.hpp"

namespace mrp::coord {
namespace {

class Dummy : public sim::Process {
 public:
  using Process::Process;
  void on_message(ProcessId, const sim::Message& m) override {
    if (m.kind() == kMsgViewChange) {
      views.push_back(sim::msg_cast<MsgViewChange>(m).view);
    } else if (m.kind() == kMsgSchemaChange) {
      const auto& s = sim::msg_cast<MsgSchemaChange>(m);
      schemas.emplace_back(s.key, s.entry);
    } else if (m.kind() == kMsgSubChange) {
      const auto& s = sim::msg_cast<MsgSubChange>(m);
      subs.push_back(s);
    } else if (m.kind() == kMsgAcceptorPrep) {
      preps.push_back(sim::msg_cast<MsgAcceptorPrep>(m));
    }
  }
  std::vector<RingView> views;
  std::vector<std::pair<std::string, SchemaEntry>> schemas;
  std::vector<MsgSubChange> subs;
  std::vector<MsgAcceptorPrep> preps;
};

class RegistryTest : public ::testing::Test {
 protected:
  void spawn(std::initializer_list<ProcessId> pids) {
    for (ProcessId p : pids) env_.spawn<Dummy>(p);
  }
  RingConfig config3() {
    RingConfig c;
    c.ring = 0;
    c.order = {1, 2, 3};
    c.acceptors = {1, 2, 3};
    return c;
  }

  sim::Env env_;
  Registry reg_{env_, 50 * kMillisecond};
};

TEST_F(RegistryTest, InitialViewIncludesAllConfiguredMembers) {
  spawn({1, 2, 3});
  reg_.create_ring(config3());
  const RingView& v = reg_.current_view(0);
  EXPECT_EQ(v.epoch, 1u);
  EXPECT_EQ(v.members.size(), 3u);
  EXPECT_EQ(v.coordinator, 1);
  EXPECT_EQ(v.quorum(), 2u);
}

TEST_F(RegistryTest, SuccessorWraps) {
  spawn({1, 2, 3});
  reg_.create_ring(config3());
  const RingView& v = reg_.current_view(0);
  EXPECT_EQ(v.successor(1), 2);
  EXPECT_EQ(v.successor(2), 3);
  EXPECT_EQ(v.successor(3), 1);
}

TEST_F(RegistryTest, CrashDetectedAndViewChanges) {
  spawn({1, 2, 3});
  reg_.create_ring(config3());
  env_.crash(2);
  env_.sim().run_for(from_millis(120));
  const RingView& v = reg_.current_view(0);
  EXPECT_EQ(v.members.size(), 2u);
  EXPECT_FALSE(v.contains(2));
  EXPECT_GT(v.epoch, 1u);
  EXPECT_EQ(v.successor(1), 3);
}

TEST_F(RegistryTest, CoordinatorElectionSkipsDeadAcceptor) {
  spawn({1, 2, 3});
  reg_.create_ring(config3());
  env_.crash(1);
  env_.sim().run_for(from_millis(120));
  EXPECT_EQ(reg_.current_view(0).coordinator, 2);
}

TEST_F(RegistryTest, CoordinatorIsSticky) {
  spawn({1, 2, 3});
  reg_.create_ring(config3());
  env_.crash(1);
  env_.sim().run_for(from_millis(120));
  EXPECT_EQ(reg_.current_view(0).coordinator, 2);
  env_.recover(1);
  env_.sim().run_for(from_millis(120));
  // 1 rejoined but 2 keeps the coordinatorship.
  EXPECT_EQ(reg_.current_view(0).coordinator, 2);
  EXPECT_TRUE(reg_.current_view(0).contains(1));
}

TEST_F(RegistryTest, EpochsIncreaseMonotonically) {
  spawn({1, 2, 3});
  reg_.create_ring(config3());
  std::uint64_t last = reg_.current_view(0).epoch;
  for (int i = 0; i < 3; ++i) {
    env_.crash(3);
    env_.sim().run_for(from_millis(120));
    EXPECT_GT(reg_.current_view(0).epoch, last);
    last = reg_.current_view(0).epoch;
    env_.recover(3);
    env_.sim().run_for(from_millis(120));
    EXPECT_GT(reg_.current_view(0).epoch, last);
    last = reg_.current_view(0).epoch;
  }
}

TEST_F(RegistryTest, WatchersAreNotifiedOfChanges) {
  spawn({1, 2, 3});
  reg_.create_ring(config3());
  reg_.watch_ring(0, 3);
  env_.sim().run_for(from_millis(10));
  auto* d = env_.process_as<Dummy>(3);
  ASSERT_EQ(d->views.size(), 1u);  // initial view on watch
  env_.crash(2);
  env_.sim().run_for(from_millis(200));
  ASSERT_GE(d->views.size(), 2u);
  EXPECT_FALSE(d->views.back().contains(2));
}

TEST_F(RegistryTest, RecoveredWatcherIsRenotified) {
  spawn({1, 2, 3});
  reg_.create_ring(config3());
  reg_.watch_ring(0, 3);
  env_.sim().run_for(from_millis(10));
  env_.crash(3);
  env_.sim().run_for(from_millis(200));
  env_.recover(3);
  env_.sim().run_for(from_millis(200));
  auto* d = env_.process_as<Dummy>(3);  // fresh incarnation
  ASSERT_GE(d->views.size(), 1u);
  EXPECT_TRUE(d->views.back().contains(3));
}

TEST_F(RegistryTest, SubscriptionsAndPartitions) {
  spawn({1, 2, 3, 4});
  reg_.set_subscriptions(1, {0, 7});
  reg_.set_subscriptions(2, {0, 7});
  reg_.set_subscriptions(3, {7});
  reg_.set_subscriptions(4, {0, 7});
  auto subs = reg_.subscribers(7);
  EXPECT_EQ(subs.size(), 4u);
  auto peers = reg_.partition_peers(1);
  EXPECT_EQ(peers, (std::vector<ProcessId>{1, 2, 4}));
  EXPECT_EQ(reg_.partition_peers(3), std::vector<ProcessId>{3});
}

TEST_F(RegistryTest, MetadataRoundtrip) {
  reg_.set_meta("schema", "hash:3");
  EXPECT_EQ(reg_.get_meta("schema"), "hash:3");
  EXPECT_EQ(reg_.get_meta("absent"), "");
}

TEST_F(RegistryTest, QuorumBasedOnConfiguredAcceptors) {
  spawn({1, 2, 3});
  reg_.create_ring(config3());
  env_.crash(2);
  env_.crash(3);
  env_.sim().run_for(from_millis(120));
  // One alive acceptor out of three configured: quorum stays 2.
  EXPECT_EQ(reg_.current_view(0).quorum(), 2u);
  EXPECT_EQ(reg_.current_view(0).acceptors.size(), 1u);
}

TEST_F(RegistryTest, VersionedSchemaPublishBumpsAndNotifiesWatchers) {
  spawn({1, 2});
  EXPECT_EQ(reg_.schema("store").version, 0u);  // never published

  EXPECT_EQ(reg_.publish_schema("store", "hash:3"), 1u);
  EXPECT_EQ(reg_.schema("store").version, 1u);
  EXPECT_EQ(reg_.schema("store").encoded, "hash:3");

  // Watching with an existing entry delivers it immediately.
  reg_.watch_schema("store", 1);
  env_.sim().run_for(from_millis(10));
  auto* d1 = env_.process_as<Dummy>(1);
  ASSERT_EQ(d1->schemas.size(), 1u);
  EXPECT_EQ(d1->schemas[0].first, "store");
  EXPECT_EQ(d1->schemas[0].second.version, 1u);

  // Watching a never-published key delivers nothing until a publish.
  reg_.watch_schema("other", 2);
  env_.sim().run_for(from_millis(10));
  auto* d2 = env_.process_as<Dummy>(2);
  EXPECT_TRUE(d2->schemas.empty());

  EXPECT_EQ(reg_.publish_schema("store", "range:00"), 2u);
  EXPECT_EQ(reg_.publish_schema("other", "x"), 1u);  // versions are per key
  env_.sim().run_for(from_millis(10));
  ASSERT_EQ(d1->schemas.size(), 2u);
  EXPECT_EQ(d1->schemas[1].second.version, 2u);
  EXPECT_EQ(d1->schemas[1].second.encoded, "range:00");
  ASSERT_EQ(d2->schemas.size(), 1u);
  EXPECT_EQ(d2->schemas[0].first, "other");
}

TEST_F(RegistryTest, SubscriptionEpochsBumpAndNotifyWatchers) {
  spawn({1, 2, 9});
  reg_.watch_subscriptions(9);
  EXPECT_EQ(reg_.subscription_epoch(1), 0u);

  reg_.set_subscriptions(1, {3, 0});
  reg_.set_subscriptions(2, {0});
  reg_.set_subscriptions(1, {0, 3, 5});
  EXPECT_EQ(reg_.subscription_epoch(1), 2u);
  EXPECT_EQ(reg_.subscription_epoch(2), 1u);

  env_.sim().run_for(from_millis(10));
  auto* w = env_.process_as<Dummy>(9);
  ASSERT_EQ(w->subs.size(), 3u);
  EXPECT_EQ(w->subs[0].process, 1);
  EXPECT_EQ(w->subs[0].epoch, 1u);
  EXPECT_EQ(w->subs[0].groups, (std::vector<GroupId>{0, 3}));  // sorted
  EXPECT_EQ(w->subs[2].process, 1);
  EXPECT_EQ(w->subs[2].epoch, 2u);
  EXPECT_EQ(w->subs[2].groups, (std::vector<GroupId>{0, 3, 5}));
}

TEST_F(RegistryTest, DynamicMemberJoinsRingOrderAndView) {
  spawn({1, 2, 3, 4});
  reg_.create_ring(config3());
  reg_.watch_ring(0, 1);
  env_.sim().run_for(from_millis(10));
  const std::uint64_t epoch_before = reg_.current_view(0).epoch;

  reg_.add_ring_member(0, 4);
  const RingView& v = reg_.current_view(0);
  EXPECT_GT(v.epoch, epoch_before);
  EXPECT_TRUE(v.contains(4));
  EXPECT_FALSE(v.is_acceptor(4));  // dynamic members are never acceptors
  EXPECT_EQ(v.total_acceptors, 3u);  // quorum basis unchanged
  EXPECT_EQ(v.successor(3), 4);      // appended at the ring tail
  EXPECT_EQ(v.successor(4), 1);      // wraps

  // Watchers hear about the membership change.
  env_.sim().run_for(from_millis(10));
  auto* d = env_.process_as<Dummy>(1);
  ASSERT_GE(d->views.size(), 2u);
  EXPECT_TRUE(d->views.back().contains(4));

  // And a dynamic member can leave again.
  reg_.remove_ring_member(0, 4);
  EXPECT_FALSE(reg_.current_view(0).contains(4));
  EXPECT_EQ(reg_.config(0).order.size(), 3u);
}

// --- acceptor-set reconfiguration -------------------------------------------
// The Dummy process cannot run the ring-level catch-up protocol, so these
// tests drive the registry's half directly: observe the MsgAcceptorPrep,
// then confirm with acceptor_synced as the joiner would.

TEST_F(RegistryTest, InitialViewCarriesAcceptorBasis) {
  spawn({1, 2, 3});
  reg_.create_ring(config3());
  const RingView& v = reg_.current_view(0);
  EXPECT_EQ(v.acceptor_view, 1u);
  EXPECT_EQ(v.configured_acceptors, (std::vector<ProcessId>{1, 2, 3}));
}

TEST_F(RegistryTest, AddAcceptorCatchesUpBeforeActivation) {
  spawn({1, 2, 3, 4});
  reg_.create_ring(config3());
  const std::uint64_t aview_before = reg_.acceptor_view(0);

  reg_.add_acceptor(0, 4);
  env_.sim().run_for(from_millis(10));
  // Joined as a member immediately, but the quorum basis is untouched until
  // the catch-up completes.
  EXPECT_TRUE(reg_.current_view(0).contains(4));
  EXPECT_EQ(reg_.current_view(0).total_acceptors, 3u);
  EXPECT_EQ(reg_.acceptor_view(0), aview_before);
  EXPECT_TRUE(reg_.change_pending(0));

  auto* joiner = env_.process_as<Dummy>(4);
  ASSERT_GE(joiner->preps.size(), 1u);
  const MsgAcceptorPrep& prep = joiner->preps.back();
  EXPECT_EQ(prep.ring, 0);
  EXPECT_EQ(prep.sources, (std::vector<ProcessId>{1, 2, 3}));

  reg_.acceptor_synced(0, 4, prep.seq);
  const RingView& v = reg_.current_view(0);
  EXPECT_FALSE(reg_.change_pending(0));
  EXPECT_EQ(v.total_acceptors, 4u);
  EXPECT_TRUE(v.is_acceptor(4));
  EXPECT_GT(v.acceptor_view, aview_before);
  EXPECT_EQ(v.configured_acceptors, (std::vector<ProcessId>{1, 2, 3, 4}));
}

TEST_F(RegistryTest, RemoveAcceptorActivatesImmediately) {
  spawn({1, 2, 3});
  reg_.create_ring(config3());
  const std::uint64_t aview_before = reg_.acceptor_view(0);
  const std::uint64_t epoch_before = reg_.current_view(0).epoch;

  // Single-step shrink is intersection-safe: no catch-up needed.
  reg_.remove_acceptor(0, 3);
  const RingView& v = reg_.current_view(0);
  EXPECT_FALSE(reg_.change_pending(0));
  EXPECT_EQ(v.total_acceptors, 2u);
  EXPECT_FALSE(v.is_acceptor(3));
  EXPECT_TRUE(v.contains(3));  // demoted to learner, still a member
  EXPECT_GT(v.acceptor_view, aview_before);
  EXPECT_GT(v.epoch, epoch_before);
}

TEST_F(RegistryTest, ReplaceAcceptorSyncsFromAliveUnionThenDropsDead) {
  spawn({1, 2, 3, 4});
  reg_.create_ring(config3());
  env_.crash(3);
  env_.sim().run_for(from_millis(120));

  reg_.replace_acceptor(0, 3, 4);
  env_.sim().run_for(from_millis(10));
  EXPECT_TRUE(reg_.change_pending(0));
  auto* joiner = env_.process_as<Dummy>(4);
  ASSERT_GE(joiner->preps.size(), 1u);
  // The union excludes the dead acceptor and the joiner itself.
  EXPECT_EQ(joiner->preps.back().sources, (std::vector<ProcessId>{1, 2}));

  reg_.acceptor_synced(0, 4, joiner->preps.back().seq);
  const RingView& v = reg_.current_view(0);
  EXPECT_EQ(v.total_acceptors, 3u);
  EXPECT_TRUE(v.is_acceptor(4));
  EXPECT_FALSE(v.contains(3));  // replaced acceptor leaves the ring entirely
  EXPECT_EQ(v.configured_acceptors, (std::vector<ProcessId>{1, 2, 4}));
}

TEST_F(RegistryTest, JoinerDeathAbortsPendingChange) {
  spawn({1, 2, 3, 4});
  reg_.create_ring(config3());
  reg_.add_acceptor(0, 4);
  EXPECT_TRUE(reg_.change_pending(0));
  env_.crash(4);
  env_.sim().run_for(from_millis(200));
  EXPECT_FALSE(reg_.change_pending(0));
  EXPECT_EQ(reg_.current_view(0).total_acceptors, 3u);
}

TEST_F(RegistryTest, SourceDeathRestartsChangeWithFreshSources) {
  spawn({1, 2, 3, 4});
  reg_.create_ring(config3());
  reg_.add_acceptor(0, 4);
  env_.sim().run_for(from_millis(10));
  auto* joiner = env_.process_as<Dummy>(4);
  ASSERT_GE(joiner->preps.size(), 1u);
  const std::uint64_t seq1 = joiner->preps.back().seq;

  env_.crash(2);
  env_.sim().run_for(from_millis(200));
  EXPECT_TRUE(reg_.change_pending(0));
  const MsgAcceptorPrep& prep2 = joiner->preps.back();
  EXPECT_GT(prep2.seq, seq1);
  EXPECT_EQ(prep2.sources, (std::vector<ProcessId>{1, 3}));

  // A stale confirmation (from the aborted attempt) must be ignored.
  reg_.acceptor_synced(0, 4, seq1);
  EXPECT_TRUE(reg_.change_pending(0));
  reg_.acceptor_synced(0, 4, prep2.seq);
  EXPECT_FALSE(reg_.change_pending(0));
  EXPECT_EQ(reg_.current_view(0).total_acceptors, 4u);
}

TEST_F(RegistryTest, RemoveDemotesStickyCoordinator) {
  spawn({1, 2, 3});
  reg_.create_ring(config3());
  EXPECT_EQ(reg_.current_view(0).coordinator, 1);
  reg_.remove_acceptor(0, 1);
  // The sticky coordinator left the quorum basis: leadership must move.
  EXPECT_EQ(reg_.current_view(0).coordinator, 2);
}

TEST_F(RegistryTest, AutoHealDraftsStandbyAfterSuspectGrace) {
  spawn({1, 2, 3, 4});
  RingConfig c = config3();
  c.fd.auto_heal = true;
  c.fd.suspect_grace = 150 * kMillisecond;
  reg_.create_ring(c);
  reg_.add_ring_member(0, 4);  // standby rides along as a learner
  reg_.add_standby(0, 4);

  env_.crash(3);
  env_.sim().run_for(from_millis(100));
  EXPECT_FALSE(reg_.change_pending(0)) << "drafted before the grace elapsed";
  env_.sim().run_for(from_millis(200));
  EXPECT_TRUE(reg_.change_pending(0));
  EXPECT_TRUE(reg_.standbys(0).empty());  // draftee left the pool

  auto* joiner = env_.process_as<Dummy>(4);
  ASSERT_GE(joiner->preps.size(), 1u);
  reg_.acceptor_synced(0, 4, joiner->preps.back().seq);
  EXPECT_EQ(reg_.heal_count(), 1u);
  const RingView& v = reg_.current_view(0);
  EXPECT_TRUE(v.is_acceptor(4));
  EXPECT_FALSE(v.contains(3));
}

TEST_F(RegistryTest, RecoveryWithinGraceCancelsSuspicion) {
  spawn({1, 2, 3, 4});
  RingConfig c = config3();
  c.fd.auto_heal = true;
  c.fd.suspect_grace = 300 * kMillisecond;
  reg_.create_ring(c);
  reg_.add_standby(0, 4);

  env_.crash(3);
  env_.sim().run_for(from_millis(150));
  env_.recover(3);
  env_.sim().run_for(from_millis(400));
  EXPECT_FALSE(reg_.change_pending(0));
  EXPECT_EQ(reg_.standbys(0), std::vector<ProcessId>{4});
  EXPECT_TRUE(reg_.current_view(0).is_acceptor(3));
}

TEST_F(RegistryTest, PerRingFdIntervalWithJitterStillDetectsCrashes) {
  spawn({1, 2, 3});
  RingConfig c = config3();
  c.fd.interval = 20 * kMillisecond;  // faster than the registry-wide 50ms
  c.fd.jitter = 0.5;                  // deterministic decoherence
  reg_.create_ring(c);
  env_.crash(2);
  env_.sim().run_for(from_millis(60));
  EXPECT_FALSE(reg_.current_view(0).contains(2));
}

TEST_F(RegistryTest, UnwatchStopsNotifications) {
  spawn({1, 2, 3});
  reg_.create_ring(config3());
  reg_.watch_ring(0, 3);
  env_.sim().run_for(from_millis(10));
  auto* d = env_.process_as<Dummy>(3);
  const std::size_t seen = d->views.size();
  reg_.unwatch_ring(0, 3);
  env_.crash(2);
  env_.sim().run_for(from_millis(300));
  EXPECT_EQ(d->views.size(), seen) << "unwatched process was still notified";
}

}  // namespace
}  // namespace mrp::coord
