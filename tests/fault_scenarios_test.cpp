// Chaos scenarios: the deterministic fault-injection subsystem (src/fault/)
// driving MRP-Store and dLog deployments through crashes, partitions,
// network chaos and disk faults.
//
// Every scenario is executed TWICE with the same seed and must produce the
// byte-identical injector trace and the identical combined state digest —
// that is the subsystem's reproducibility contract (a failing seed can be
// replayed exactly). Each run also checks safety (monotone, merge-identical
// delivery sequences; converged replica digests; no acked write lost) and
// liveness (client progress resumes after the last fault).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "coord/registry.hpp"
#include "dlog/client.hpp"
#include "dlog/dlog.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "fault/probes.hpp"
#include "fault/runner.hpp"
#include "mrpstore/client.hpp"
#include "mrpstore/elastic.hpp"
#include "mrpstore/store.hpp"
#include "multiring/node.hpp"
#include "sim/env.hpp"
#include "smr/client.hpp"
#include "smr/replica.hpp"

namespace mrp {
namespace {

// ---------------------------------------------------------------------------
// Store-scenario scaffolding

struct StoreScenarioResult {
  fault::ScenarioReport report;
  std::uint64_t completions = 0;
};

/// Store options shared by the chaos scenarios: fast failure detection and
/// recovery so faults play out within a few simulated seconds.
mrpstore::StoreOptions chaos_store_options() {
  mrpstore::StoreOptions so;
  so.partitions = 1;
  so.replicas_per_partition = 3;
  so.global_ring = false;
  so.ring_params.gap_timeout = 20 * kMillisecond;
  so.replica_options.checkpoint.interval = 1500 * kMillisecond;
  so.replica_options.trim.interval = 3 * kSecond;
  return so;
}

/// Spawns a closed-loop client inserting unique keys and recording which
/// inserts were acknowledged; the returned set backs the no-lost-acked-write
/// invariant.
smr::ClientNode* spawn_insert_client(
    sim::Env& env, const mrpstore::StoreClient& helper,
    std::shared_ptr<std::vector<std::string>> acked, const std::string& prefix,
    std::uint32_t workers = 4) {
  smr::ClientNode::Options copts;
  copts.workers = workers;
  copts.retry_timeout = kSecond;
  return env.spawn<smr::ClientNode>(
      990, copts,
      smr::ClientNode::NextFn([&helper, prefix, n = 0](std::uint32_t) mutable
                              -> std::optional<smr::Request> {
        return helper.insert(prefix + std::to_string(n++), to_bytes("v"));
      }),
      smr::ClientNode::DoneFn([acked](const smr::Completion& c) {
        const auto op = mrpstore::decode_op(c.op);
        for (const auto& [tag, reply] : c.results) {
          if (mrpstore::decode_result(reply).status == mrpstore::Status::kOk) {
            acked->push_back(op.key);
            break;
          }
        }
      }));
}

/// No acked insert may be missing from any alive replica of its partition.
void add_acked_invariant(fault::ScenarioRunner& runner, sim::Env& env,
                         const mrpstore::StoreDeployment& dep,
                         std::shared_ptr<std::vector<std::string>> acked) {
  runner.add_invariant(
      "acked-writes-durable", [&env, &dep, acked]() -> std::optional<std::string> {
        for (const std::string& key : *acked) {
          const auto p = static_cast<std::size_t>(
              dep.partitioner->partition_for_key(key));
          for (ProcessId r : dep.replicas[p]) {
            if (!env.is_alive(r)) continue;
            if (!dep.replica_get(env, r, key)) {
              return "acked key '" + key + "' lost at replica " +
                     std::to_string(r);
            }
          }
        }
        return std::nullopt;
      });
}

// ---------------------------------------------------------------------------
// Scenario 1: coordinator crash mid-instance, later restart + recovery.

StoreScenarioResult scenario_coordinator_crash(std::uint64_t seed) {
  sim::Env env(seed);
  coord::Registry registry(env, 50 * kMillisecond);
  auto dep = mrpstore::build_store(env, registry, chaos_store_options());
  mrpstore::StoreClient helper(dep);
  auto acked = std::make_shared<std::vector<std::string>>();
  auto* client = spawn_insert_client(env, helper, acked, "cc");

  // The initial coordinator is the first configured acceptor.
  const ProcessId coordinator = dep.replicas[0][0];
  fault::FaultPlan plan;
  plan.crash_restart(3 * kSecond, coordinator, 5 * kSecond);

  fault::ScenarioRunner runner(env, std::move(plan));
  fault::watch_store(runner, env, dep);
  runner.watch_progress("client", [client] { return client->completed(); });
  add_acked_invariant(runner, env, dep, acked);
  runner.set_quiesce([client] { client->stop(); });

  StoreScenarioResult out;
  out.report = runner.run(14 * kSecond, 6 * kSecond);
  out.completions = client->completed();
  return out;
}

TEST(FaultScenarios, CoordinatorCrashMidInstance) {
  auto r1 = scenario_coordinator_crash(7001);
  auto r2 = scenario_coordinator_crash(7001);
  EXPECT_TRUE(r1.report.ok()) << r1.report.violations_text();
  EXPECT_EQ(r1.report.trace, r2.report.trace) << "fault trace not reproducible";
  EXPECT_EQ(r1.report.state_digest, r2.report.state_digest)
      << "same seed diverged";
  EXPECT_GT(r1.completions, 100u);
  // The crash and the restart both fired.
  EXPECT_EQ(r1.report.trace.size(), 2u);
}

// ---------------------------------------------------------------------------
// Scenario 2: ring partition (one replica isolated) and heal.

StoreScenarioResult scenario_partition_heal(std::uint64_t seed) {
  sim::Env env(seed);
  coord::Registry registry(env, 50 * kMillisecond);
  auto dep = mrpstore::build_store(env, registry, chaos_store_options());
  mrpstore::StoreClient helper(dep);
  auto acked = std::make_shared<std::vector<std::string>>();
  auto* client = spawn_insert_client(env, helper, acked, "ph");

  // Isolating a ring member cuts the ring pipeline (the member stays in the
  // view — the registry detects crashes, not partitions), so delivery stalls
  // until the heal; the invariants require it to *resume* afterwards.
  fault::FaultPlan plan;
  plan.partition_window(3 * kSecond, 6 * kSecond, dep.replicas[0][1]);

  fault::ScenarioRunner runner(env, std::move(plan));
  fault::watch_store(runner, env, dep);
  runner.watch_progress("client", [client] { return client->completed(); });
  add_acked_invariant(runner, env, dep, acked);
  runner.set_quiesce([client] { client->stop(); });

  StoreScenarioResult out;
  out.report = runner.run(13 * kSecond, 6 * kSecond);
  out.completions = client->completed();
  return out;
}

TEST(FaultScenarios, RingPartitionAndHeal) {
  auto r1 = scenario_partition_heal(7002);
  auto r2 = scenario_partition_heal(7002);
  EXPECT_TRUE(r1.report.ok()) << r1.report.violations_text();
  EXPECT_EQ(r1.report.trace, r2.report.trace);
  EXPECT_EQ(r1.report.state_digest, r2.report.state_digest);
  EXPECT_GT(r1.completions, 100u);
}

// ---------------------------------------------------------------------------
// Scenario 3: lagging group — traffic on one partition ring only; the idle
// global ring must be kept live by rate-leveling skips (the
// DeterministicMerger skip path), with a chaos window jittering latencies.

StoreScenarioResult scenario_lagging_group(std::uint64_t seed) {
  sim::Env env(seed);
  coord::Registry registry(env, 50 * kMillisecond);
  mrpstore::StoreOptions so = chaos_store_options();
  so.partitions = 2;
  so.global_ring = true;
  so.ring_params.lambda = 2000;
  so.ring_params.skip_interval = 5 * kMillisecond;
  so.global_params = so.ring_params;
  auto dep = mrpstore::build_store(env, registry, so);

  // Address partition 0 directly (keys never hit partition 1 or the global
  // ring, which therefore only advances through skips).
  auto acked = std::make_shared<std::vector<std::string>>();
  smr::ClientNode::Options copts;
  copts.workers = 4;
  copts.retry_timeout = kSecond;
  auto* client = env.spawn<smr::ClientNode>(
      990, copts,
      smr::ClientNode::NextFn([&dep, n = 0](std::uint32_t) mutable
                              -> std::optional<smr::Request> {
        mrpstore::Op op;
        op.type = mrpstore::OpType::kInsert;
        op.key = "lag" + std::to_string(n++);
        op.value = to_bytes("v");
        return smr::Request::single(dep.partition_groups[0], dep.replicas[0],
                                    mrpstore::encode_op(op));
      }),
      smr::ClientNode::DoneFn([acked](const smr::Completion& c) {
        for (const auto& [tag, reply] : c.results) {
          if (mrpstore::decode_result(reply).status == mrpstore::Status::kOk) {
            acked->push_back(mrpstore::decode_op(c.op).key);
            break;
          }
        }
      }));

  fault::FaultPlan plan;
  plan.chaos_window(3 * kSecond, 6 * kSecond,
                    sim::NetFault{0.0, 0.0, 500 * kMicrosecond});

  fault::ScenarioRunner runner(env, std::move(plan));
  fault::watch_store(runner, env, dep);
  runner.watch_progress("client", [client] { return client->completed(); });
  runner.add_invariant("skip-path-exercised",
                       [&env, &dep]() -> std::optional<std::string> {
                         auto* rep = env.process_as<smr::ReplicaNode>(
                             dep.replicas[0][0]);
                         if (rep->merger()->skipped_instances() == 0) {
                           return "idle rings produced no merger skips";
                         }
                         return std::nullopt;
                       });
  runner.add_invariant(
      "acked-writes-durable", [&env, &dep, acked]() -> std::optional<std::string> {
        for (const std::string& key : *acked) {
          for (ProcessId r : dep.replicas[0]) {
            if (!env.is_alive(r)) continue;
            if (!dep.replica_get(env, r, key)) {
              return "acked key '" + key + "' lost at replica " +
                     std::to_string(r);
            }
          }
        }
        return std::nullopt;
      });
  runner.set_quiesce([client] { client->stop(); });

  StoreScenarioResult out;
  out.report = runner.run(12 * kSecond, 5 * kSecond);
  out.completions = client->completed();
  return out;
}

TEST(FaultScenarios, LaggingGroupKeptLiveBySkips) {
  auto r1 = scenario_lagging_group(7003);
  auto r2 = scenario_lagging_group(7003);
  EXPECT_TRUE(r1.report.ok()) << r1.report.violations_text();
  EXPECT_EQ(r1.report.trace, r2.report.trace);
  EXPECT_EQ(r1.report.state_digest, r2.report.state_digest);
  EXPECT_GT(r1.completions, 100u);
}

// ---------------------------------------------------------------------------
// Scenario 4: disk stall while a replica checkpoints (checkpoints are
// written synchronously — delivery pauses, then must resume), plus a
// temporarily degraded acceptor-log device.

StoreScenarioResult scenario_disk_stall(std::uint64_t seed) {
  sim::Env env(seed);
  coord::Registry registry(env, 50 * kMillisecond);
  mrpstore::StoreOptions so = chaos_store_options();
  so.ring_params.write_mode = storage::WriteMode::Async;
  so.replica_options.checkpoint.interval = 1200 * kMillisecond;
  so.replica_options.checkpoint.disk_index = 1;  // snapshots on own device
  auto dep = mrpstore::build_store(env, registry, so);
  for (ProcessId r : dep.all_replicas()) {
    env.set_disk_params(r, 0, sim::DiskParams::ssd());
    env.set_disk_params(r, 1, sim::DiskParams::ssd());
  }
  mrpstore::StoreClient helper(dep);
  auto acked = std::make_shared<std::vector<std::string>>();
  auto* client = spawn_insert_client(env, helper, acked, "ds");

  const ProcessId victim = dep.replicas[0][1];
  fault::FaultPlan plan;
  // Stall the checkpoint device across a checkpoint boundary, and make the
  // acceptor-log device crawl for a while.
  plan.disk_stall(3500 * kMillisecond, victim, 1, 2500 * kMillisecond);
  plan.disk_slow(4 * kSecond, victim, 0, 8.0);
  plan.disk_slow(7 * kSecond, victim, 0, 1.0);

  fault::ScenarioRunner runner(env, std::move(plan));
  fault::watch_store(runner, env, dep);
  runner.watch_progress("client", [client] { return client->completed(); });
  runner.add_invariant("checkpoints-taken",
                       [&env, &dep]() -> std::optional<std::string> {
                         std::uint64_t taken = 0;
                         for (ProcessId r : dep.all_replicas()) {
                           if (!env.is_alive(r)) continue;
                           taken += env.process_as<smr::ReplicaNode>(r)
                                        ->checkpointer()
                                        .checkpoints_taken();
                         }
                         if (taken == 0) return "no checkpoint completed";
                         return std::nullopt;
                       });
  runner.add_invariant("stall-injected",
                       [&env, victim]() -> std::optional<std::string> {
                         if (env.disk(victim, 1).stalls() == 0) {
                           return "checkpoint disk never stalled";
                         }
                         return std::nullopt;
                       });
  add_acked_invariant(runner, env, dep, acked);
  runner.set_quiesce([client] { client->stop(); });

  StoreScenarioResult out;
  out.report = runner.run(13 * kSecond, 6 * kSecond);
  out.completions = client->completed();
  return out;
}

TEST(FaultScenarios, DiskStallDuringCheckpoint) {
  auto r1 = scenario_disk_stall(7004);
  auto r2 = scenario_disk_stall(7004);
  EXPECT_TRUE(r1.report.ok()) << r1.report.violations_text();
  EXPECT_EQ(r1.report.trace, r2.report.trace);
  EXPECT_EQ(r1.report.state_digest, r2.report.state_digest);
  EXPECT_GT(r1.completions, 100u);
}

// ---------------------------------------------------------------------------
// Scenario 5: crash during recovery replay — the replica dies again while
// it is installing checkpoints / replaying retransmitted instances, then
// recovers for good.

StoreScenarioResult scenario_crash_during_recovery(std::uint64_t seed) {
  sim::Env env(seed);
  coord::Registry registry(env, 50 * kMillisecond);
  mrpstore::StoreOptions so = chaos_store_options();
  so.replica_options.checkpoint.interval = kSecond;
  so.replica_options.trim.interval = 2 * kSecond;
  auto dep = mrpstore::build_store(env, registry, so);
  mrpstore::StoreClient helper(dep);
  auto acked = std::make_shared<std::vector<std::string>>();
  auto* client = spawn_insert_client(env, helper, acked, "cr");

  const ProcessId victim = dep.replicas[0][2];
  fault::FaultPlan plan;
  plan.crash(3 * kSecond, victim);
  plan.restart(7 * kSecond, victim);
  // 300 ms after restarting, the replica is mid-recovery (fetching remote
  // checkpoints / replaying); kill it again.
  plan.crash(7300 * kMillisecond, victim);
  plan.restart(9500 * kMillisecond, victim);

  fault::ScenarioRunner runner(env, std::move(plan));
  fault::watch_store(runner, env, dep);
  runner.watch_progress("client", [client] { return client->completed(); });
  add_acked_invariant(runner, env, dep, acked);
  runner.set_quiesce([client] { client->stop(); });

  StoreScenarioResult out;
  out.report = runner.run(16 * kSecond, 6 * kSecond);
  out.completions = client->completed();
  return out;
}

TEST(FaultScenarios, CrashDuringRecoveryReplay) {
  auto r1 = scenario_crash_during_recovery(7005);
  auto r2 = scenario_crash_during_recovery(7005);
  EXPECT_TRUE(r1.report.ok()) << r1.report.violations_text();
  EXPECT_EQ(r1.report.trace, r2.report.trace);
  EXPECT_EQ(r1.report.state_digest, r2.report.state_digest);
  ASSERT_EQ(r1.report.trace.size(), 4u);
  EXPECT_GT(r1.completions, 100u);
}

// ---------------------------------------------------------------------------
// Scenario 6: random soak with a fixed seed — crashes, isolation windows
// and chaos windows drawn from the seeded Rng; the whole schedule (and the
// final state) must replay identically.

StoreScenarioResult scenario_random_soak(std::uint64_t seed) {
  sim::Env env(seed);
  coord::Registry registry(env, 50 * kMillisecond);
  mrpstore::StoreOptions so = chaos_store_options();
  so.partitions = 2;
  so.replica_options.checkpoint.interval = kSecond;
  so.replica_options.trim.interval = 2 * kSecond;
  auto dep = mrpstore::build_store(env, registry, so);
  mrpstore::StoreClient helper(dep);
  auto acked = std::make_shared<std::vector<std::string>>();
  auto* client = spawn_insert_client(env, helper, acked, "soak");

  fault::FaultPlan::SoakOptions opts;
  opts.duration = 14 * kSecond;
  opts.victims = dep.all_replicas();
  opts.mean_gap = 1200 * kMillisecond;
  opts.chaos = sim::NetFault{0.01, 0.01, 500 * kMicrosecond};
  Rng plan_rng(seed * 2654435761ULL + 1);
  fault::FaultPlan plan = fault::FaultPlan::random_soak(plan_rng, opts);

  fault::ScenarioRunner runner(env, std::move(plan));
  fault::watch_store(runner, env, dep);
  runner.watch_progress("client", [client] { return client->completed(); });
  add_acked_invariant(runner, env, dep, acked);
  runner.set_quiesce([client] { client->stop(); });

  StoreScenarioResult out;
  out.report = runner.run(14 * kSecond, 7 * kSecond);
  out.completions = client->completed();
  return out;
}

TEST(FaultScenarios, RandomSoakWithFixedSeedIsReproducible) {
  auto r1 = scenario_random_soak(7006);
  auto r2 = scenario_random_soak(7006);
  EXPECT_TRUE(r1.report.ok()) << r1.report.violations_text();
  EXPECT_EQ(r1.report.trace, r2.report.trace)
      << "soak schedule not reproducible from its seed";
  EXPECT_EQ(r1.report.state_digest, r2.report.state_digest);
  EXPECT_FALSE(r1.report.trace.empty()) << "soak drew no faults";
  EXPECT_GT(r1.completions, 100u);

  // A different seed must draw a different schedule (sanity check that the
  // generator actually uses the Rng).
  auto r3 = scenario_random_soak(7007);
  EXPECT_NE(r1.report.trace, r3.report.trace);
}

// ---------------------------------------------------------------------------
// Scenario 7: dLog under network chaos (drop + duplicate + reordering
// delay) plus a server crash — acked appends survive at every server.

struct DlogScenarioResult {
  fault::ScenarioReport report;
  std::uint64_t completions = 0;
};

DlogScenarioResult scenario_dlog_chaos(std::uint64_t seed) {
  sim::Env env(seed);
  coord::Registry registry(env, 50 * kMillisecond);
  dlog::DLogOptions opts;
  opts.num_logs = 2;
  opts.ring_params.gap_timeout = 20 * kMillisecond;
  // Rate leveling keeps the three-ring merge live while individual rings
  // are idle (and its skips get exercised under chaos too).
  opts.ring_params.lambda = 3000;
  opts.ring_params.skip_interval = 5 * kMillisecond;
  opts.common_params = opts.ring_params;
  opts.replica_options.checkpoint.interval = kSecond;
  opts.replica_options.trim.interval = 2 * kSecond;
  auto dep = dlog::build_dlog(env, registry, opts);
  dlog::DLogClient client(dep);

  // Highest acked position per log (from append/multi-append replies).
  auto acked = std::make_shared<std::map<dlog::LogId, dlog::Position>>();
  // dLog's flow-control client options (window + jittered backoff).
  smr::ClientNode::Options copts = dlog::DLogClient::client_options(4, 4, kSecond);
  auto* cnode = env.spawn<smr::ClientNode>(
      990, copts,
      smr::ClientNode::NextFn([&client, n = 0](std::uint32_t) mutable
                              -> std::optional<smr::Request> {
        const int pick = n++ % 5;
        if (pick == 4) return client.multi_append({0, 1}, Bytes(64, 0x5b));
        return client.append(static_cast<dlog::LogId>(pick % 2),
                             Bytes(64, 0x5a));
      }),
      smr::ClientNode::DoneFn([acked](const smr::Completion& c) {
        for (const auto& [tag, reply] : c.results) {
          const auto result = dlog::decode_result(reply);
          if (result.status != dlog::Status::kOk) continue;
          for (const auto& [log, pos] : result.positions) {
            auto it = acked->find(log);
            if (it == acked->end() || pos > it->second) (*acked)[log] = pos;
          }
        }
      }));

  fault::FaultPlan plan;
  plan.chaos_window(2 * kSecond, 7 * kSecond,
                    sim::NetFault{0.03, 0.03, kMillisecond});
  plan.crash_restart(8 * kSecond, dep.servers[2], 3 * kSecond);

  fault::ScenarioRunner runner(env, std::move(plan));
  fault::watch_dlog(runner, env, dep);
  runner.watch_progress("client", [cnode] { return cnode->completed(); });
  runner.add_invariant(
      "acked-appends-durable",
      [&env, &dep, acked]() -> std::optional<std::string> {
        for (const auto& [log, pos] : *acked) {
          for (ProcessId s : dep.servers) {
            if (!env.is_alive(s)) continue;
            if (dep.server_next_position(env, s, log) <= pos) {
              return "acked append " + std::to_string(pos) + " of log " +
                     std::to_string(log) + " missing at server " +
                     std::to_string(s);
            }
          }
        }
        return std::nullopt;
      });
  runner.set_quiesce([cnode] { cnode->stop(); });

  DlogScenarioResult out;
  out.report = runner.run(14 * kSecond, 6 * kSecond);
  out.completions = cnode->completed();
  return out;
}

TEST(FaultScenarios, DlogUnderDropDuplicateReorderChaos) {
  auto r1 = scenario_dlog_chaos(7008);
  auto r2 = scenario_dlog_chaos(7008);
  EXPECT_TRUE(r1.report.ok()) << r1.report.violations_text();
  EXPECT_EQ(r1.report.trace, r2.report.trace);
  EXPECT_EQ(r1.report.state_digest, r2.report.state_digest);
  EXPECT_GT(r1.completions, 100u);
}

// ---------------------------------------------------------------------------
// Scenario 8: online scale-out under network chaos — a partition split
// (subscription change + live state transfer + schema v2 cutover) executes
// inside a NetFault drop/duplicate window. The whole cutover must be
// deterministic: two runs with the same seed produce bit-identical traces
// and state digests, and the new partition's replicas deliver identical
// merged sequences.

struct ElasticScenarioResult {
  fault::ScenarioReport report;
  std::uint64_t completions = 0;
  std::uint64_t reroutes = 0;
};

ElasticScenarioResult scenario_elastic_split(std::uint64_t seed) {
  sim::Env env(seed);
  coord::Registry registry(env, 50 * kMillisecond);
  mrpstore::StoreOptions so = chaos_store_options();
  so.partitioner = mrpstore::RangePartitioner({}).encode();  // one partition
  auto dep = mrpstore::build_store(env, registry, so);
  mrpstore::StoreClient helper(dep);
  auto acked = std::make_shared<std::vector<std::string>>();
  auto* client = spawn_insert_client(env, helper, acked, "el");
  // The insert client keeps its (soon stale) schema until kStaleRouting
  // replies trigger the refresh-and-retry loop.
  client->set_reroute(helper.reroute_fn(&registry));

  const std::vector<ProcessId> new_replicas = {400, 401, 402};

  fault::FaultPlan plan;
  plan.chaos_window(2 * kSecond, 8 * kSecond,
                    sim::NetFault{0.03, 0.03, 500 * kMicrosecond});

  fault::ScenarioRunner runner(env, std::move(plan));
  fault::watch_store(runner, env, dep);
  runner.watch_group("partition-new", new_replicas,
                     [&env, &dep](ProcessId pid) {
                       return dep.replica_digest(env, pid);
                     });
  runner.watch_progress("client", [client] { return client->completed(); });
  add_acked_invariant(runner, env, dep, acked);

  // Mid-chaos, split the single partition at "el5": keys >= "el5" move to a
  // new partition (ring 10, replicas 400-402) bootstrapped by state
  // transfer, while inserts keep flowing.
  env.sim().schedule_at(4 * kSecond, [&env, &registry, &dep, &runner,
                                     new_replicas] {
    mrpstore::SplitSpec spec;
    spec.source_group = dep.partition_groups[0];
    spec.split_key = "el5";
    spec.new_group = 10;
    spec.new_replicas = new_replicas;
    spec.ring_params.gap_timeout = 20 * kMillisecond;
    spec.replica_options.checkpoint.interval = 1500 * kMillisecond;
    spec.replica_options.trim.interval = 3 * kSecond;
    spec.admin_pid = 890;
    mrpstore::split_partition(env, registry, dep, spec);
    for (ProcessId pid : new_replicas) runner.attach_now(pid);
  });

  runner.add_invariant(
      "split-completed", [&env, &registry, &dep,
                          new_replicas]() -> std::optional<std::string> {
        if (registry.schema(mrpstore::kStoreSchemaKey).version < 2) {
          return "registry never saw schema v2";
        }
        for (ProcessId pid : new_replicas) {
          auto* rep = env.process_as<mrpstore::StoreReplicaNode>(pid);
          if (rep->bootstrapping()) {
            return "replica " + std::to_string(pid) +
                   " still awaits its handoff";
          }
          const auto& kv = dynamic_cast<const mrpstore::KvStateMachine&>(
              rep->state_machine());
          if (kv.schema().version < 2) {
            return "replica " + std::to_string(pid) + " still on schema v1";
          }
        }
        if (registry.subscribers(10).size() != new_replicas.size()) {
          return "new ring's subscriptions not registered";
        }
        return std::nullopt;
      });
  runner.set_quiesce([client] { client->stop(); });

  ElasticScenarioResult out;
  out.report = runner.run(14 * kSecond, 7 * kSecond);
  out.completions = client->completed();
  out.reroutes = client->reroutes();
  return out;
}

TEST(FaultScenarios, ElasticSplitUnderChaosIsDeterministic) {
  auto r1 = scenario_elastic_split(7009);
  auto r2 = scenario_elastic_split(7009);
  EXPECT_TRUE(r1.report.ok()) << r1.report.violations_text();
  EXPECT_EQ(r1.report.trace, r2.report.trace)
      << "chaos schedule not reproducible";
  EXPECT_EQ(r1.report.state_digest, r2.report.state_digest)
      << "same-seed scale-out diverged (cutover not deterministic)";
  EXPECT_GT(r1.completions, 100u);
  // The stale client really exercised the refresh-and-retry loop, and both
  // runs rerouted identically.
  EXPECT_GE(r1.reroutes, 1u);
  EXPECT_EQ(r1.reroutes, r2.reroutes);
}

// ---------------------------------------------------------------------------
// Scenario 9: sustained overload against tight flow-control caps while one
// acceptor's log device crawls (a slow ring). The bounded pipeline must
// shed at every layer — replica admission window (MsgClientBusy), the
// coordinator's bounded pending queue (MsgBusy) — without any queue ever
// exceeding its cap, keep every acked write durable, resume full service
// once the disk recovers, and replay bit-identically.

struct OverloadScenarioResult {
  fault::ScenarioReport report;
  std::uint64_t completions = 0;
  std::uint64_t busy_pushbacks = 0;
  std::uint64_t sheds = 0;
};

OverloadScenarioResult scenario_overload_slow_ring(std::uint64_t seed) {
  sim::Env env(seed);
  coord::Registry registry(env, 50 * kMillisecond);
  mrpstore::StoreOptions so = chaos_store_options();
  // Tight bounded pipeline: a fraction of what 48 closed-loop workers offer.
  // Synchronous acceptor logs on SSDs make the ring disk-bound, so the
  // disk_slow fault genuinely slows the ring; checkpoints go to their own
  // device so the pipeline fault cannot wedge the checkpointer.
  so.ring_params.write_mode = storage::WriteMode::Sync;
  so.ring_params.window = 32;
  so.ring_params.min_window = 4;
  so.ring_params.max_pending = 64;
  so.ring_params.busy_retry_hint = 2 * kMillisecond;
  so.replica_options.admission_commands = 24;
  so.replica_options.admission_bytes = 32 * 1024;
  so.replica_options.busy_retry_hint = 2 * kMillisecond;
  so.replica_options.checkpoint.disk_index = 1;
  auto dep = mrpstore::build_store(env, registry, so);
  for (ProcessId r : dep.all_replicas()) {
    env.set_cpu(r, sim::CpuParams{from_micros(5.0), 1.2});
    env.set_disk_params(r, 0, sim::DiskParams::ssd());
    env.set_disk_params(r, 1, sim::DiskParams::ssd());
  }
  mrpstore::StoreClient helper(dep);
  auto acked = std::make_shared<std::vector<std::string>>();

  // The store's own flow-control client options (window + jittered backoff).
  smr::ClientNode::Options copts =
      mrpstore::StoreClient::client_options(48, 36, 500 * kMillisecond);
  auto* client = env.spawn<smr::ClientNode>(
      990, copts,
      smr::ClientNode::NextFn([&helper, n = 0](std::uint32_t) mutable
                              -> std::optional<smr::Request> {
        return helper.insert("ov" + std::to_string(n++), to_bytes("v"));
      }),
      smr::ClientNode::DoneFn([acked](const smr::Completion& c) {
        const auto op = mrpstore::decode_op(c.op);
        for (const auto& [tag, reply] : c.results) {
          if (mrpstore::decode_result(reply).status == mrpstore::Status::kOk) {
            acked->push_back(op.key);
            break;
          }
        }
      }));

  // Slow ring: the second acceptor's log device degrades 25x mid-run, then
  // recovers — the adaptive inflight window must shrink instead of pinning
  // undecided instances, and service must come back afterwards.
  const ProcessId slow = dep.replicas[0][1];
  fault::FaultPlan plan;
  plan.disk_slow(3 * kSecond, slow, 0, 25.0);
  plan.disk_slow(8 * kSecond, slow, 0, 1.0);

  fault::ScenarioRunner runner(env, std::move(plan));
  fault::watch_store(runner, env, dep);
  runner.watch_progress("client", [client] { return client->completed(); });
  add_acked_invariant(runner, env, dep, acked);
  runner.add_invariant(
      "queues-bounded", [&env, &dep, &so]() -> std::optional<std::string> {
        for (ProcessId r : dep.all_replicas()) {
          if (!env.is_alive(r)) continue;
          auto* rep = env.process_as<smr::ReplicaNode>(r);
          for (GroupId g : dep.partition_groups) {
            const auto adm = rep->admission_stats(g);
            if (adm.commands_hwm > so.replica_options.admission_commands) {
              return "replica " + std::to_string(r) +
                     " admission hwm " + std::to_string(adm.commands_hwm) +
                     " exceeds cap";
            }
            if (auto* h = rep->handler(g)) {
              const auto flow = h->flow_stats();
              if (flow.pending_hwm > so.ring_params.max_pending) {
                return "ring " + std::to_string(g) + " pending hwm " +
                       std::to_string(flow.pending_hwm) + " exceeds cap";
              }
              if (flow.inflight_hwm > so.ring_params.window) {
                return "ring " + std::to_string(g) + " inflight hwm " +
                       std::to_string(flow.inflight_hwm) + " exceeds window";
              }
            }
          }
        }
        return std::nullopt;
      });
  runner.add_invariant(
      "pushback-exercised",
      [&env, &dep, client]() -> std::optional<std::string> {
        std::uint64_t sheds = 0;
        for (ProcessId r : dep.all_replicas()) {
          if (!env.is_alive(r)) continue;
          auto* rep = env.process_as<smr::ReplicaNode>(r);
          for (GroupId g : dep.partition_groups) {
            sheds += rep->admission_stats(g).shed;
          }
        }
        if (sheds == 0) return "no admission-window shed happened";
        if (client->busy_pushbacks() == 0) return "client saw no pushback";
        return std::nullopt;
      });
  runner.set_quiesce([client] { client->stop(); });

  OverloadScenarioResult out;
  out.report = runner.run(12 * kSecond, 8 * kSecond);
  out.completions = client->completed();
  out.busy_pushbacks = client->busy_pushbacks();
  for (ProcessId r : dep.all_replicas()) {
    if (!env.is_alive(r)) continue;
    auto* rep = env.process_as<smr::ReplicaNode>(r);
    for (GroupId g : dep.partition_groups) {
      out.sheds += rep->admission_stats(g).shed;
    }
  }
  return out;
}

TEST(FaultScenarios, OverloadWithSlowRingShedsBoundedAndReplays) {
  auto r1 = scenario_overload_slow_ring(7010);
  auto r2 = scenario_overload_slow_ring(7010);
  EXPECT_TRUE(r1.report.ok()) << r1.report.violations_text();
  EXPECT_EQ(r1.report.trace, r2.report.trace)
      << "overload schedule not reproducible";
  EXPECT_EQ(r1.report.state_digest, r2.report.state_digest)
      << "same-seed overload run diverged";
  EXPECT_GT(r1.completions, 100u);
  // The shed/backoff machinery itself must replay identically too.
  EXPECT_EQ(r1.completions, r2.completions);
  EXPECT_EQ(r1.busy_pushbacks, r2.busy_pushbacks);
  EXPECT_EQ(r1.sheds, r2.sheds);
  EXPECT_GT(r1.busy_pushbacks, 0u);
}

// ---------------------------------------------------------------------------
// Scenario 10: cross-partition atomic transfers under crash+recover plus
// network chaos (drop + duplicate + reordering delay). Transfers are
// multi-group commands — one copy per owning partition's ring, gathered and
// executed exactly once per replica at its merged commit position — so the
// safety property is monetary: no transfer half lost, none applied twice.
// Accounts open at 0 and transfers overdraft freely, so every replica pair
// must agree that the total balance across both partitions is exactly 0 once
// the run drains; a lost debit or duplicated credit shifts the sum by the
// transfer amount and is caught. The crashed replica recovers mid-stream
// (its checkpoint may hold a half-gathered multi-group command), and the
// whole run must replay bit-identically from its seed.

struct TransferScenarioResult {
  fault::ScenarioReport report;
  std::uint64_t completions = 0;
};

TransferScenarioResult scenario_crosspartition_transfers(std::uint64_t seed) {
  // Accounts a0..a7 live below the "m" split (partition 0), z0..z7 above it
  // (partition 1).
  constexpr int kAccounts = 8;
  const auto acct_a = [](int i) { return "a" + std::to_string(i); };
  const auto acct_z = [](int i) { return "z" + std::to_string(i); };

  sim::Env env(seed);
  coord::Registry registry(env, 50 * kMillisecond);
  mrpstore::StoreOptions so = chaos_store_options();
  so.partitions = 2;
  so.partitioner = mrpstore::RangePartitioner({"m"}).encode();
  auto dep = mrpstore::build_store(env, registry, so);
  mrpstore::StoreClient helper(dep);

  // Deterministic closed-loop mix: half the transfers cross the partition
  // boundary in either direction (atomic multi-group commands), the rest
  // stay inside one partition (ordinary single-group commands) — the blend
  // that interleaves gathering commands with overtaking single-group ones.
  auto acked = std::make_shared<std::uint64_t>(0);
  smr::ClientNode::Options copts;
  copts.workers = 4;
  copts.retry_timeout = kSecond;
  auto* client = env.spawn<smr::ClientNode>(
      990, copts,
      smr::ClientNode::NextFn([&helper, acct_a, acct_z, n = 0](std::uint32_t)
                                  mutable -> std::optional<smr::Request> {
        const int k = n++;
        const std::string a = acct_a(k % kAccounts);
        const std::string z = acct_z((k / kAccounts) % kAccounts);
        switch (k % 4) {
          case 0:
            return helper.transfer(a, z, 3);  // cross-partition, a -> z
          case 1:
            return helper.transfer(z, a, 2);  // cross-partition, z -> a
          case 2:
            return helper.transfer(a, acct_a((k + 1) % kAccounts), 1);
          default:
            return helper.transfer(z, acct_z((k + 1) % kAccounts), 1);
        }
      }),
      smr::ClientNode::DoneFn([acked](const smr::Completion& c) {
        if (mrpstore::StoreClient::merge_multi(c.results).status ==
            mrpstore::Status::kOk) {
          ++*acked;
        }
      }));

  fault::FaultPlan plan;
  plan.chaos_window(2 * kSecond, 8 * kSecond,
                    sim::NetFault{0.03, 0.03, 500 * kMicrosecond});
  plan.crash_restart(3 * kSecond, dep.replicas[0][1], 3 * kSecond);

  fault::ScenarioRunner runner(env, std::move(plan));
  fault::watch_store(runner, env, dep);
  runner.watch_progress("client", [client] { return client->completed(); });

  // Conservation across partitions: every (partition-0 replica,
  // partition-1 replica) pair must account for exactly the initial capital
  // of 0. Checked after the drain — mid-run the two halves of a transfer
  // commit at different times, so the sum is only meaningful at rest.
  runner.add_invariant(
      "balance-conserved",
      [&env, &dep, acct_a, acct_z, kAccounts]() -> std::optional<std::string> {
        const auto balance = [&](ProcessId r, const std::string& key) {
          const auto v = dep.replica_get(env, r, key);
          return v ? std::stoll(mrp::to_string(*v)) : 0LL;
        };
        const auto partition_sum = [&](std::size_t p, ProcessId r) {
          long long sum = 0;
          for (int i = 0; i < kAccounts; ++i) {
            sum += balance(r, p == 0 ? acct_a(i) : acct_z(i));
          }
          return sum;
        };
        std::vector<std::vector<long long>> sums(2);
        for (std::size_t p = 0; p < 2; ++p) {
          for (ProcessId r : dep.replicas[p]) {
            if (env.is_alive(r)) sums[p].push_back(partition_sum(p, r));
          }
          if (sums[p].empty()) return "no alive replica in partition";
        }
        for (long long s0 : sums[0]) {
          for (long long s1 : sums[1]) {
            if (s0 + s1 != 0) {
              return "total balance " + std::to_string(s0 + s1) +
                     " != 0 (partition sums " + std::to_string(s0) + " / " +
                     std::to_string(s1) + "): a transfer half was lost or " +
                     "applied twice";
            }
          }
        }
        return std::nullopt;
      });
  runner.add_invariant("cross-partition-acked",
                       [acked]() -> std::optional<std::string> {
                         if (*acked == 0) return "no transfer was ever acked";
                         return std::nullopt;
                       });
  runner.set_quiesce([client] { client->stop(); });

  TransferScenarioResult out;
  out.report = runner.run(14 * kSecond, 6 * kSecond);
  out.completions = *acked;
  return out;
}

TEST(FaultScenarios, CrossPartitionTransfersUnderCrashAndChaos) {
  auto r1 = scenario_crosspartition_transfers(7011);
  auto r2 = scenario_crosspartition_transfers(7011);
  EXPECT_TRUE(r1.report.ok()) << r1.report.violations_text();
  EXPECT_EQ(r1.report.trace, r2.report.trace)
      << "chaos schedule not reproducible";
  EXPECT_EQ(r1.report.state_digest, r2.report.state_digest)
      << "same-seed transfer run diverged";
  // The crash and the restart both fired, inside the chaos window.
  EXPECT_EQ(r1.report.trace.size(), 4u);
  EXPECT_GT(r1.completions, 100u);
  EXPECT_EQ(r1.completions, r2.completions);
}

// ---------------------------------------------------------------------------
// Scenario 11: permanent acceptor loss with automatic self-healing. One
// acceptor of a three-acceptor ring is killed for good (no restart) while a
// standby rides along as a learner. The registry's failure detector must
// suspect the dead acceptor past the grace period, draft the standby, sync
// it from the union of the surviving acceptors' logs and activate it — all
// while the ring keeps deciding on the surviving majority. The heal itself
// must be deterministic: two runs with the same seed produce bit-identical
// traces and state digests.

class HealProbeNode final : public multiring::MultiRingNode {
 public:
  using Deliveries = std::map<ProcessId, std::vector<std::string>>;

  HealProbeNode(sim::Env& env, ProcessId id, coord::Registry* reg,
                multiring::NodeConfig cfg, std::shared_ptr<Deliveries> log)
      : MultiRingNode(env, id, reg, std::move(cfg)) {
    set_deliver([this, log](GroupId, InstanceId, const Payload& p) {
      (*log)[this->id()].push_back(p.as_string());
    });
  }
};

struct HealScenarioResult {
  fault::ScenarioReport report;
  std::uint64_t heal_count = 0;
  std::uint64_t deliveries_at_survivor = 0;
};

HealScenarioResult scenario_acceptor_selfheal(std::uint64_t seed) {
  sim::Env env(seed);
  coord::Registry registry(env, 50 * kMillisecond);

  coord::RingConfig cfg;
  cfg.ring = 0;
  cfg.order = {1, 2, 3, 4};
  cfg.acceptors = {1, 2, 3};
  cfg.standbys = {4};  // learner from birth: already caught up on delivery
  cfg.fd.auto_heal = true;
  cfg.fd.suspect_grace = 400 * kMillisecond;
  cfg.fd.jitter = 0.25;  // jittered suspicion must still replay bit-identically
  registry.create_ring(cfg);

  auto log = std::make_shared<HealProbeNode::Deliveries>();
  multiring::NodeConfig node_cfg;
  node_cfg.rings.push_back(multiring::RingSub{0, {}, true});
  for (ProcessId i : cfg.order) {
    env.spawn<HealProbeNode>(i, &registry, node_cfg, log);
  }

  // Deterministic open-loop workload: nodes 1 and 3 (both survive) keep
  // proposing across the kill and the heal.
  int n = 0;
  for (TimeNs t = 100 * kMillisecond; t < 9 * kSecond;
       t += 10 * kMillisecond) {
    env.sim().schedule_at(t, [&env, t, v = n++] {
      const ProcessId via = (t / (10 * kMillisecond)) % 3 == 0 ? 3 : 1;
      env.process_as<HealProbeNode>(via)->multicast(
          0, Payload("h" + std::to_string(v)));
    });
  }

  // Kill acceptor 2 permanently — no restart event; recovery must come from
  // the standby pool, not the victim.
  fault::FaultPlan plan;
  plan.crash(3 * kSecond, 2);

  fault::ScenarioRunner runner(env, std::move(plan));
  runner.watch_group("ring0", {1, 2, 3, 4}, [log](ProcessId pid) {
    std::uint64_t h = 1469598103934665603ULL;
    for (const std::string& s : (*log)[pid]) {
      for (const char c : s) {
        h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
        h *= 1099511628211ULL;
      }
      h *= 1099511628211ULL;
    }
    return h;
  });
  runner.watch_progress("survivor-delivery",
                        [log] { return (*log)[1].size(); });
  runner.add_invariant(
      "auto-heal-completed",
      [&env, &registry]() -> std::optional<std::string> {
        if (registry.heal_count() != 1) {
          return "expected exactly one heal, saw " +
                 std::to_string(registry.heal_count());
        }
        const coord::RingView& v = registry.current_view(0);
        if (v.configured_acceptors != std::vector<ProcessId>{1, 3, 4}) {
          return "healed acceptor basis is not {1,3,4}";
        }
        if (v.contains(2)) return "dead acceptor 2 still a ring member";
        if (!env.process_as<HealProbeNode>(4)->handler(0)->is_acceptor()) {
          return "drafted standby 4 never became an acceptor";
        }
        if (!registry.standbys(0).empty()) {
          return "standby pool not consumed by the draft";
        }
        return std::nullopt;
      });

  HealScenarioResult out;
  out.report = runner.run(10 * kSecond, 5 * kSecond);
  out.heal_count = registry.heal_count();
  out.deliveries_at_survivor = (*log)[1].size();
  return out;
}

TEST(FaultScenarios, PermanentAcceptorLossSelfHealsDeterministically) {
  auto r1 = scenario_acceptor_selfheal(7012);
  auto r2 = scenario_acceptor_selfheal(7012);
  EXPECT_TRUE(r1.report.ok()) << r1.report.violations_text();
  EXPECT_EQ(r1.report.trace, r2.report.trace)
      << "heal schedule not reproducible";
  EXPECT_EQ(r1.report.state_digest, r2.report.state_digest)
      << "same-seed self-heal diverged";
  ASSERT_EQ(r1.report.trace.size(), 1u);  // the permanent crash, nothing else
  EXPECT_EQ(r1.heal_count, 1u);
  EXPECT_GT(r1.deliveries_at_survivor, 100u);
  EXPECT_EQ(r1.deliveries_at_survivor, r2.deliveries_at_survivor);
}

// ---------------------------------------------------------------------------
// Unit coverage of the injection primitives themselves.

TEST(FaultPlan, DescribeAndOrdering) {
  fault::FaultPlan plan;
  plan.restart(5 * kSecond, 7);
  plan.crash(2 * kSecond, 7);
  plan.chaos_window(kSecond, 3 * kSecond, sim::NetFault{0.5, 0.0, 0});
  const auto lines = plan.describe();
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_NE(lines[0].find("net-chaos"), std::string::npos);
  EXPECT_NE(lines[1].find("crash p7"), std::string::npos);
  EXPECT_NE(lines[2].find("net-calm"), std::string::npos);
  EXPECT_NE(lines[3].find("restart p7"), std::string::npos);
  EXPECT_EQ(plan.last_event_time(), 5 * kSecond);
}

TEST(FaultInjector, SkipsInapplicableEventsInsteadOfAborting) {
  sim::Env env(1);
  // A bare process so crash/restart have a target.
  struct Nop : sim::Process {
    using sim::Process::Process;
    void on_message(ProcessId, const sim::Message&) override {}
  };
  env.spawn<Nop>(1);

  fault::FaultPlan plan;
  plan.crash(kMillisecond, 1);
  plan.crash(2 * kMillisecond, 1);    // already down -> skipped
  plan.restart(3 * kMillisecond, 1);
  plan.restart(4 * kMillisecond, 1);  // already up -> skipped
  fault::FaultInjector injector(env, plan);
  injector.arm();
  env.sim().run_for(10 * kMillisecond);

  ASSERT_EQ(injector.trace().size(), 4u);
  EXPECT_EQ(injector.applied(), 2u);
  EXPECT_NE(injector.trace()[1].find("skipped"), std::string::npos);
  EXPECT_NE(injector.trace()[3].find("skipped"), std::string::npos);
  EXPECT_TRUE(env.is_alive(1));
}

TEST(NetworkChaos, DropDuplicateDelayAreSeedDeterministic) {
  auto run = [](std::uint64_t seed) {
    sim::Env env(seed);
    struct Counter : sim::Process {
      using sim::Process::Process;
      std::vector<int> seen;
      void on_message(ProcessId, const sim::Message& m) override {
        seen.push_back(m.kind());
      }
    };
    struct Ping : sim::Message {
      int k;
      explicit Ping(int kk) : k(kk) {}
      int kind() const override { return k; }
      std::size_t wire_size() const override { return 64; }
    };
    env.spawn<Counter>(1);
    auto* rx = env.spawn<Counter>(2);
    env.net().set_fault(sim::NetFault{0.2, 0.2, kMillisecond});
    for (int i = 0; i < 200; ++i) {
      env.process(1)->send(2, std::make_shared<Ping>(1000 + i));
    }
    env.sim().run_for(kSecond);
    return std::make_tuple(rx->seen, env.net().faults_dropped(),
                           env.net().faults_duplicated(),
                           env.net().faults_delayed());
  };
  const auto a = run(99);
  const auto b = run(99);
  EXPECT_EQ(a, b) << "chaos must be a pure function of the seed";
  EXPECT_GT(std::get<1>(a), 0u);
  EXPECT_GT(std::get<2>(a), 0u);
  EXPECT_GT(std::get<3>(a), 0u);
  // Some messages must actually arrive.
  EXPECT_FALSE(std::get<0>(a).empty());
}

TEST(NetworkChaos, IsolationCutsDataPlaneBothWays) {
  sim::Env env(1);
  struct Counter : sim::Process {
    using sim::Process::Process;
    int seen = 0;
    void on_message(ProcessId, const sim::Message&) override { ++seen; }
  };
  struct Ping : sim::Message {
    int kind() const override { return 1; }
    std::size_t wire_size() const override { return 16; }
  };
  auto* a = env.spawn<Counter>(1);
  auto* b = env.spawn<Counter>(2);
  env.net().set_isolated(2, true);
  env.process(1)->send(2, std::make_shared<Ping>());
  env.process(2)->send(1, std::make_shared<Ping>());
  env.sim().run_for(kMillisecond);
  EXPECT_EQ(a->seen, 0);
  EXPECT_EQ(b->seen, 0);
  env.net().set_isolated(2, false);
  env.process(1)->send(2, std::make_shared<Ping>());
  env.sim().run_for(kMillisecond);
  EXPECT_EQ(b->seen, 1);
}

TEST(DiskFaults, StallAndSlowdownExtendCompletionTimes) {
  sim::Env env(1);
  env.set_disk_params(1, 0, sim::DiskParams{kMillisecond, 1e9});
  sim::Disk& disk = env.disk(1, 0);

  TimeNs done_at = -1;
  disk.write(0, [&] { done_at = env.now(); });
  env.sim().run_until_idle();
  EXPECT_EQ(done_at, kMillisecond);

  disk.stall(10 * kMillisecond);
  EXPECT_EQ(disk.stalls(), 1u);
  TimeNs done2 = -1;
  disk.write(0, [&] { done2 = env.now(); });
  env.sim().run_until_idle();
  EXPECT_EQ(done2, kMillisecond + 10 * kMillisecond + kMillisecond);

  disk.set_slowdown(3.0);
  EXPECT_EQ(disk.slowdown(), 3.0);
  TimeNs done3 = -1;
  disk.write(0, [&] { done3 = env.now(); });
  env.sim().run_until_idle();
  EXPECT_EQ(done3, done2 + 3 * kMillisecond);
}

}  // namespace
}  // namespace mrp
