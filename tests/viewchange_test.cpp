// View-change and membership edge cases for Ring Paxos: learner-only
// members, larger acceptor sets, double failures, partition-and-heal, and
// coordinator churn under continuous load.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "coord/registry.hpp"
#include "multiring/node.hpp"
#include "sim/env.hpp"

namespace mrp {
namespace {

using Sink = std::function<void(ProcessId, GroupId, InstanceId, const Payload&)>;

class TestNode : public multiring::MultiRingNode {
 public:
  TestNode(sim::Env& env, ProcessId id, coord::Registry* reg,
           multiring::NodeConfig cfg, std::shared_ptr<Sink> sink)
      : MultiRingNode(env, id, reg, std::move(cfg)) {
    set_deliver([this, sink](GroupId g, InstanceId i, const Payload& p) {
      (*sink)(this->id(), g, i, p);
    });
  }
};

class ViewChangeTest : public ::testing::Test {
 protected:
  /// Ring of `acceptors` acceptor-learners plus `learners` learner-only
  /// members appended after them.
  void build(int acceptors, int learners,
             ringpaxos::RingParams params = {}) {
    n_acceptors_ = acceptors;
    n_total_ = acceptors + learners;
    coord::RingConfig cfg;
    cfg.ring = 0;
    for (int i = 1; i <= n_total_; ++i) {
      cfg.order.push_back(i);
      if (i <= acceptors) cfg.acceptors.insert(i);
    }
    registry_->create_ring(cfg);
    multiring::NodeConfig node_cfg;
    node_cfg.rings.push_back(multiring::RingSub{0, params, true});
    for (int i = 1; i <= n_total_; ++i) {
      env_.spawn<TestNode>(i, registry_.get(), node_cfg, sink_);
    }
    env_.sim().run_for(from_millis(10));
  }

  TestNode* node(ProcessId id) { return env_.process_as<TestNode>(id); }

  std::set<std::string> delivered_set(ProcessId n) {
    std::set<std::string> out;
    for (auto& [node_id, payload] : deliveries_) {
      if (node_id == n) out.insert(payload);
    }
    return out;
  }

  int n_acceptors_ = 0;
  int n_total_ = 0;
  sim::Env env_{321};
  std::unique_ptr<coord::Registry> registry_ =
      std::make_unique<coord::Registry>(env_, 50 * kMillisecond);
  std::vector<std::pair<ProcessId, std::string>> deliveries_;
  std::shared_ptr<Sink> sink_ = std::make_shared<Sink>(
      [this](ProcessId n, GroupId, InstanceId, const Payload& p) {
        deliveries_.emplace_back(n, p.as_string());
      });
};

TEST_F(ViewChangeTest, LearnerOnlyMemberDeliversWithoutVoting) {
  build(3, 2);  // nodes 4, 5 are learner-only ring members
  for (int i = 0; i < 12; ++i) {
    node(4)->multicast(0, Payload("L" + std::to_string(i)));
  }
  env_.sim().run_for(from_millis(500));
  EXPECT_EQ(delivered_set(4).size(), 12u);
  EXPECT_EQ(delivered_set(5).size(), 12u);
  EXPECT_EQ(node(4)->handler(0)->log(), nullptr) << "learner must not log";
}

TEST_F(ViewChangeTest, FiveAcceptorsSurviveTwoFailures) {
  build(5, 0);
  env_.crash(2);
  env_.crash(4);
  env_.sim().run_for(from_millis(200));
  for (int i = 0; i < 10; ++i) {
    node(5)->multicast(0, Payload("q" + std::to_string(i)));
  }
  env_.sim().run_for(from_seconds(2));
  EXPECT_EQ(delivered_set(1).size(), 10u);  // quorum 3 of 5 intact
  EXPECT_EQ(delivered_set(5).size(), 10u);
}

TEST_F(ViewChangeTest, LearnerOnlyCrashDoesNotAffectOthers) {
  build(3, 1);
  env_.crash(4);
  env_.sim().run_for(from_millis(200));
  for (int i = 0; i < 8; ++i) {
    node(1)->multicast(0, Payload("x" + std::to_string(i)));
  }
  env_.sim().run_for(from_millis(500));
  EXPECT_EQ(delivered_set(3).size(), 8u);
}

TEST_F(ViewChangeTest, ChurnUnderLoadLosesNothingFromSurvivors) {
  build(5, 0);
  int sent = 0;
  // Continuous load while two members bounce repeatedly.
  for (int round = 0; round < 4; ++round) {
    env_.crash(2);
    for (int i = 0; i < 5; ++i) {
      node(1)->multicast(0, Payload("c" + std::to_string(sent++)));
      env_.sim().run_for(from_millis(25));
    }
    env_.recover(2);
    env_.crash(5);
    for (int i = 0; i < 5; ++i) {
      node(1)->multicast(0, Payload("c" + std::to_string(sent++)));
      env_.sim().run_for(from_millis(25));
    }
    env_.recover(5);
    env_.sim().run_for(from_millis(200));
  }
  env_.sim().run_for(from_seconds(5));
  auto got = delivered_set(1);
  for (int i = 0; i < sent; ++i) {
    EXPECT_TRUE(got.count("c" + std::to_string(i))) << "lost c" << i;
  }
}

TEST_F(ViewChangeTest, NetworkPartitionHealsAndCatchesUp) {
  build(3, 0);
  // Cut node 3 off from both peers: ring circulation bypasses it once the
  // failure detector reacts... but our FD watches crashes, not partitions,
  // so the ring keeps trying to route through 3 and relies on timeouts.
  // With 3 unreachable, Phase 2 messages die on the 2->3 link; the
  // coordinator retries until the partition heals.
  env_.net().set_partitioned(2, 3, true);
  env_.net().set_partitioned(1, 3, true);
  node(1)->multicast(0, Payload(std::string("during-partition")));
  env_.sim().run_for(from_seconds(2));
  env_.net().set_partitioned(2, 3, false);
  env_.net().set_partitioned(1, 3, false);
  env_.sim().run_for(from_seconds(3));
  EXPECT_TRUE(delivered_set(1).count("during-partition"));
  EXPECT_TRUE(delivered_set(3).count("during-partition"))
      << "partitioned node must catch up after healing";
}

TEST_F(ViewChangeTest, RoundsAreMonotoneAcrossElections) {
  build(3, 0);
  Round r0 = node(1)->handler(0)->round();
  env_.crash(1);
  env_.sim().run_for(from_millis(200));
  const Round r1 = node(2)->handler(0)->round();
  EXPECT_GT(r1, r0);
  env_.recover(1);
  env_.crash(2);
  env_.sim().run_for(from_millis(300));
  // Node 1 recovered; with 2 down the sticky election falls to it or 3.
  Round r2 = 0;
  for (ProcessId n : {1, 3}) {
    if (node(n)->handler(0)->is_coordinator()) {
      r2 = node(n)->handler(0)->round();
    }
  }
  EXPECT_GT(r2, r1);
}

TEST_F(ViewChangeTest, TtlKillsOrphanedMessages) {
  build(3, 0, {});
  // Sanity: after heavy churn the simulator must drain (no message loops
  // forever thanks to the TTL backstop).
  for (int i = 0; i < 10; ++i) {
    node(1)->multicast(0, Payload("t" + std::to_string(i)));
  }
  env_.crash(2);
  env_.sim().run_for(from_millis(100));
  env_.recover(2);
  env_.sim().run_for(from_seconds(3));
  const auto before = env_.sim().executed_events();
  env_.sim().run_for(from_seconds(2));
  // Only periodic timers fire once the protocol is quiescent (no lambda:
  // no skip traffic). A runaway loop would execute orders of magnitude
  // more events.
  EXPECT_LT(env_.sim().executed_events() - before, 5000u);
}

}  // namespace
}  // namespace mrp
