// Regression tests for protocol bugs found while reproducing the paper's
// figures. Each test documents the original failure mode.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "coord/registry.hpp"
#include "mrpstore/client.hpp"
#include "mrpstore/store.hpp"
#include "multiring/merger.hpp"
#include "multiring/node.hpp"
#include "sim/env.hpp"
#include "smr/client.hpp"
#include "smr/replica.hpp"
#include "storage/acceptor_log.hpp"

namespace mrp {
namespace {

using Sink = std::function<void(ProcessId, GroupId, InstanceId, const Payload&)>;

class TestNode : public multiring::MultiRingNode {
 public:
  TestNode(sim::Env& env, ProcessId id, coord::Registry* reg,
           multiring::NodeConfig cfg, std::shared_ptr<Sink> sink)
      : MultiRingNode(env, id, reg, std::move(cfg)) {
    set_deliver([this, sink](GroupId g, InstanceId i, const Payload& p) {
      (*sink)(this->id(), g, i, p);
    });
  }
};

// Bug: the quorum-crossing acceptor emitted the Decision *before*
// forwarding the Phase 2 carrying the value; every downstream member
// received decisions it could not resolve and limped along on gap
// retransmissions (~400 ms latency instead of ~1 ms, 20x throughput loss).
// Fixed by forwarding Phase 2 first (FIFO links) plus a pending-decision
// set for the general race.
TEST(Regression, DecisionsNeverBeatValuesOnTheRing) {
  sim::Env env(1);
  coord::Registry registry(env);
  coord::RingConfig rc;
  rc.ring = 0;
  rc.order = {1, 2, 3, 4};  // includes a learner-only member
  rc.acceptors = {1, 2, 3};
  registry.create_ring(rc);

  std::vector<std::string> delivered;
  auto sink = std::make_shared<Sink>(
      [&](ProcessId n, GroupId, InstanceId, const Payload& p) {
        if (n == 4) delivered.push_back(p.as_string());
      });
  multiring::NodeConfig cfg;
  cfg.rings.push_back(multiring::RingSub{0, {}, true});
  for (ProcessId n : {1, 2, 3, 4}) {
    env.spawn<TestNode>(n, &registry, cfg, sink);
  }
  env.sim().run_for(from_millis(10));
  for (int i = 0; i < 200; ++i) {
    env.process_as<TestNode>(1)->multicast(0, Payload("v" + std::to_string(i)));
    env.sim().run_for(from_micros(200));
  }
  env.sim().run_for(from_millis(200));
  EXPECT_EQ(delivered.size(), 200u);
  // In a failure-free run, delivery must never need retransmission.
  for (ProcessId n : {1, 2, 3, 4}) {
    EXPECT_EQ(env.process_as<TestNode>(n)->handler(0)->retransmissions(), 0u)
        << "node " << n << " fell back to retransmission";
  }
}

// Bug: a checkpoint tuple can point into the middle of a skip range; the
// merger, the ring handler's ordered-delivery path, and the acceptor log's
// range query all dropped the covering range, wedging recovery.
TEST(Regression, AcceptorLogRangeIncludesStraddlingSkipRecord) {
  sim::Env env;
  struct Noop : sim::Process {
    using Process::Process;
    void on_message(ProcessId, const sim::Message&) override {}
  };
  env.spawn<Noop>(1);
  storage::AcceptorLog log(env, 1, 0, storage::WriteMode::Memory);
  paxos::LogRecord rec;
  rec.vround = 1;
  rec.value = paxos::Value::skip({1, 1}, 40);  // covers [5, 45)
  rec.decided = true;
  log.accept(5, rec, nullptr);
  auto out = log.range(20, 60);  // starts inside the range
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].first, 5u);
}

TEST(Regression, MergerTrimsStraddlingSkipRange) {
  std::vector<InstanceId> delivered;
  multiring::DeterministicMerger m(
      {1}, 1, [&](GroupId, InstanceId i, const paxos::Value&) {
        delivered.push_back(i);
      });
  // Install a tuple pointing into the middle of a future skip range.
  m.install_tuple({{1, 20}});
  // The ring replays the covering range [5, 45) and then a value at 45.
  m.on_decision(1, 5, paxos::Value::skip({1, 1}, 40));
  paxos::Value v;
  v.payload = Payload(std::string("x"));
  m.on_decision(1, 45, v);
  EXPECT_EQ(delivered, std::vector<InstanceId>{45});
  EXPECT_EQ(m.skipped_instances(), 25u);  // only [20, 45) consumed
  EXPECT_EQ(m.tuple().at(1), 46u);
}

// Bug: Checkpointer::install raised the ring handlers' delivery floors
// before moving the merger's cursors; a buffered decision flushed into a
// merger still positioned at the old tuple and tripped the contiguity
// check. This end-to-end test crashes+recovers replicas of a store built
// on *rate-leveled* rings (skips exercise all the straddle paths).
TEST(Regression, RecoveryWithRateLeveledRingsConverges) {
  sim::Env env(77);
  coord::Registry registry(env, 50 * kMillisecond);
  mrpstore::StoreOptions so;
  so.partitions = 2;
  so.global_ring = true;
  so.ring_params.lambda = 3000;
  so.ring_params.skip_interval = 5 * kMillisecond;
  so.ring_params.gap_timeout = 20 * kMillisecond;
  so.global_params = so.ring_params;
  so.replica_options.checkpoint.interval = 300 * kMillisecond;
  so.replica_options.trim.interval = 600 * kMillisecond;
  auto dep = build_store(env, registry, so);
  mrpstore::StoreClient helper(dep);

  auto* c = env.spawn<smr::ClientNode>(
      900, smr::ClientNode::Options{4, 2 * kSecond, 0},
      smr::ClientNode::NextFn(
          [&helper, n = 0](std::uint32_t) mutable -> std::optional<smr::Request> {
            const int key = n % 128;
            ++n;
            return helper.insert("rk" + std::to_string(key),
                                 to_bytes(std::to_string(n)));
          }),
      smr::ClientNode::DoneFn(nullptr));

  env.sim().run_for(from_seconds(2));
  const ProcessId victim = dep.replicas[1][2];
  env.crash(victim);
  env.sim().run_for(from_seconds(3));  // checkpoints + trims while down
  env.recover(victim);
  env.sim().run_for(from_seconds(3));
  c->stop();
  env.sim().run_for(from_seconds(3));

  auto digest = [&](ProcessId r) {
    auto* rep = env.process_as<smr::ReplicaNode>(r);
    return dynamic_cast<mrpstore::KvStateMachine&>(rep->state_machine())
        .digest();
  };
  EXPECT_EQ(digest(dep.replicas[1][0]), digest(dep.replicas[1][1]));
  EXPECT_EQ(digest(dep.replicas[1][0]), digest(victim))
      << "recovered replica diverged (straddle-path regression)";
}

// Chunked retransmission: an acceptor serves at most
// max_retransmit_instances per request and the learner chases the rest.
TEST(Regression, RetransmissionIsChunked) {
  sim::Env env(5);
  coord::Registry registry(env, 50 * kMillisecond);
  coord::RingConfig rc;
  rc.ring = 0;
  rc.order = {1, 2, 3};
  rc.acceptors = {1, 2, 3};
  registry.create_ring(rc);

  std::vector<InstanceId> at3;
  auto sink = std::make_shared<Sink>(
      [&](ProcessId n, GroupId, InstanceId i, const Payload&) {
        if (n == 3) at3.push_back(i);
      });
  ringpaxos::RingParams p;
  p.gap_timeout = 20 * kMillisecond;
  p.max_retransmit_instances = 10;  // tiny chunks
  multiring::NodeConfig cfg;
  cfg.rings.push_back(multiring::RingSub{0, p, true});
  for (ProcessId n : {1, 2, 3}) env.spawn<TestNode>(n, &registry, cfg, sink);
  env.sim().run_for(from_millis(10));

  env.crash(3);
  env.sim().run_for(from_millis(100));
  for (int i = 0; i < 80; ++i) {
    env.process_as<TestNode>(1)->multicast(0, Payload("c" + std::to_string(i)));
  }
  env.sim().run_for(from_millis(300));
  env.recover(3);
  // Fresh traffic reveals the gap; recovery needs ceil(80/10)+ chunks.
  for (int i = 80; i < 85; ++i) {
    env.process_as<TestNode>(1)->multicast(0, Payload("c" + std::to_string(i)));
    env.sim().run_for(from_millis(50));
  }
  env.sim().run_for(from_seconds(2));
  EXPECT_GE(at3.size(), 85u);
  EXPECT_GE(env.process_as<TestNode>(3)->handler(0)->retransmissions(), 8u);
}

// Semi-open-loop client pacing: with think_time set, offered load stays at
// workers/think_time even when the service is far faster.
TEST(Regression, ClientThinkTimePacesLoad) {
  sim::Env env(6);
  struct Echo : sim::Process {
    using Process::Process;
    void on_message(ProcessId, const sim::Message& m) override {
      const auto& req = sim::msg_cast<smr::MsgClientRequest>(m);
      auto reply = std::make_shared<smr::MsgClientReply>();
      reply->session = req.command.session;
      reply->seq = req.command.seq;
      send(smr::session_client(req.command.session), reply);
    }
  };
  env.spawn<Echo>(1);
  smr::ClientNode::Options opts;
  opts.workers = 10;
  opts.think_time = 100 * kMillisecond;  // 10 workers -> 100 ops/s
  auto* c = env.spawn<smr::ClientNode>(
      900, opts,
      smr::ClientNode::NextFn([](std::uint32_t) -> std::optional<smr::Request> {
        return smr::Request::single(0, {1}, to_bytes("ping"));
      }),
      smr::ClientNode::DoneFn(nullptr));
  env.sim().run_for(from_seconds(10));
  EXPECT_NEAR(static_cast<double>(c->completed()), 1000.0, 30.0);
}

}  // namespace
}  // namespace mrp
