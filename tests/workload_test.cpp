// Workload generators: YCSB mixes, zipfian skew, latest distribution, and
// determinism.
#include <gtest/gtest.h>

#include <map>

#include "workload/distributions.hpp"
#include "workload/ycsb.hpp"

namespace mrp::workload {
namespace {

TEST(Distributions, UniformCoversRange) {
  Rng rng(1);
  UniformGenerator g(10);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 10000; ++i) ++counts[g.next(rng)];
  EXPECT_EQ(counts.size(), 10u);
  for (auto& [k, c] : counts) {
    EXPECT_GT(c, 800);
    EXPECT_LT(c, 1200);
  }
}

TEST(Distributions, ZipfianIsSkewed) {
  Rng rng(2);
  ZipfianGenerator g(1000);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) ++counts[g.next(rng)];
  // Rank 0 must be far hotter than rank 500.
  EXPECT_GT(counts[0], 20 * std::max(counts[500], 1));
  // All ranks in range.
  for (auto& [k, _] : counts) EXPECT_LT(k, 1000u);
}

TEST(Distributions, ZipfianHeadMass) {
  Rng rng(3);
  ZipfianGenerator g(10000);
  int head = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (g.next(rng) < 100) ++head;  // hottest 1%
  }
  // YCSB zipfian(0.99): the hottest 1% of keys draw a large share.
  EXPECT_GT(head, n / 4);
}

TEST(Distributions, ScrambledZipfianSpreadsHotKeys) {
  Rng rng(4);
  ScrambledZipfianGenerator g(1000);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) ++counts[g.next(rng)];
  // Still skewed: some key dominates.
  int max_count = 0;
  for (auto& [_, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 5000);
  // But the hottest keys are not clustered at low indexes: the top key is
  // essentially a random position.
  std::uint64_t hottest = 0;
  for (auto& [k, c] : counts) {
    if (c == max_count) hottest = k;
  }
  EXPECT_GT(hottest, 10u);
}

TEST(Distributions, LatestFavorsRecent) {
  Rng rng(5);
  LatestGenerator g(1000);
  int recent = 0;
  for (int i = 0; i < 10000; ++i) {
    if (g.next(rng, 1000) >= 990) ++recent;
  }
  EXPECT_GT(recent, 3000);  // newest 1% gets a large share
}

TEST(Ycsb, WorkloadMixes) {
  struct Expect {
    char wl;
    double reads, updates, inserts, scans, rmws;
  };
  const Expect cases[] = {
      {'A', 0.5, 0.5, 0, 0, 0},   {'B', 0.95, 0.05, 0, 0, 0},
      {'C', 1.0, 0, 0, 0, 0},     {'D', 0.95, 0, 0.05, 0, 0},
      {'E', 0, 0, 0.05, 0.95, 0}, {'F', 0.5, 0, 0, 0, 0.5},
  };
  for (const auto& c : cases) {
    YcsbGenerator gen(YcsbSpec::workload(c.wl), 1000, 99);
    std::map<YcsbOpType, int> counts;
    const int n = 20000;
    for (int i = 0; i < n; ++i) ++counts[gen.next().type];
    EXPECT_NEAR(counts[YcsbOpType::kRead] / double(n), c.reads, 0.02)
        << "workload " << c.wl;
    EXPECT_NEAR(counts[YcsbOpType::kUpdate] / double(n), c.updates, 0.02);
    EXPECT_NEAR(counts[YcsbOpType::kInsert] / double(n), c.inserts, 0.02);
    EXPECT_NEAR(counts[YcsbOpType::kScan] / double(n), c.scans, 0.02);
    EXPECT_NEAR(counts[YcsbOpType::kReadModifyWrite] / double(n), c.rmws,
                0.02);
  }
}

TEST(Ycsb, KeysAreWellFormed) {
  YcsbGenerator gen(YcsbSpec::workload('A'), 500, 7);
  for (int i = 0; i < 1000; ++i) {
    const YcsbOp op = gen.next();
    EXPECT_EQ(op.key.substr(0, 4), "user");
    EXPECT_EQ(op.key.size(), 16u);
  }
  EXPECT_EQ(YcsbGenerator::key_of(42), "user000000000042");
}

TEST(Ycsb, InsertsExtendKeySpace) {
  YcsbGenerator gen(YcsbSpec::workload('D'), 100, 8);
  const auto before = gen.inserted();
  int inserts = 0;
  for (int i = 0; i < 5000; ++i) {
    if (gen.next().type == YcsbOpType::kInsert) ++inserts;
  }
  EXPECT_EQ(gen.inserted(), before + static_cast<std::uint64_t>(inserts));
  EXPECT_GT(inserts, 100);
}

TEST(Ycsb, ScanLengthsBounded) {
  YcsbSpec spec = YcsbSpec::workload('E');
  spec.max_scan_len = 50;
  YcsbGenerator gen(spec, 1000, 9);
  for (int i = 0; i < 2000; ++i) {
    const YcsbOp op = gen.next();
    if (op.type == YcsbOpType::kScan) {
      EXPECT_GE(op.scan_len, 1u);
      EXPECT_LE(op.scan_len, 50u);
    }
  }
}

TEST(Ycsb, DeterministicPerSeed) {
  YcsbGenerator a(YcsbSpec::workload('A'), 1000, 42);
  YcsbGenerator b(YcsbSpec::workload('A'), 1000, 42);
  for (int i = 0; i < 500; ++i) {
    const YcsbOp oa = a.next();
    const YcsbOp ob = b.next();
    EXPECT_EQ(oa.key, ob.key);
    EXPECT_EQ(static_cast<int>(oa.type), static_cast<int>(ob.type));
  }
}

TEST(Ycsb, ValueSizesHonored) {
  YcsbSpec spec = YcsbSpec::workload('A');
  spec.value_bytes = 256;
  YcsbGenerator gen(spec, 100, 10);
  for (int i = 0; i < 200; ++i) {
    const YcsbOp op = gen.next();
    if (op.type == YcsbOpType::kUpdate) {
      EXPECT_EQ(op.value.size(), 256u);
    }
  }
}

}  // namespace
}  // namespace mrp::workload
