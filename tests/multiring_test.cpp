// Multi-Ring Paxos: deterministic merge across groups, subscriptions,
// rate leveling keeping the merge live, and the merger unit itself.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "coord/registry.hpp"
#include "multiring/merger.hpp"
#include "multiring/node.hpp"
#include "sim/env.hpp"

namespace mrp {
namespace {

using multiring::DeterministicMerger;

paxos::Value val(const std::string& s) {
  paxos::Value v;
  v.payload = Payload(s);
  return v;
}

TEST(Merger, RoundRobinInGroupIdOrder) {
  std::vector<std::string> out;
  DeterministicMerger m({2, 1}, 1, [&](GroupId g, InstanceId, const paxos::Value& v) {
    out.push_back(std::to_string(g) + ":" + v.payload.as_string());
  });
  // Feed both groups fully; merge starts at the lowest group id.
  m.on_decision(1, 0, val("a"));
  m.on_decision(1, 1, val("b"));
  m.on_decision(2, 0, val("x"));
  m.on_decision(2, 1, val("y"));
  EXPECT_EQ(out, (std::vector<std::string>{"1:a", "2:x", "1:b", "2:y"}));
}

TEST(Merger, StallsOnMissingGroupThenResumes) {
  std::vector<std::string> out;
  DeterministicMerger m({1, 2}, 1, [&](GroupId g, InstanceId, const paxos::Value& v) {
    out.push_back(std::to_string(g) + ":" + v.payload.as_string());
  });
  m.on_decision(1, 0, val("a"));
  m.on_decision(1, 1, val("b"));
  EXPECT_EQ(out.size(), 1u);  // delivered a, now waiting on group 2
  EXPECT_EQ(m.waiting_on(), 2);
  m.on_decision(2, 0, val("x"));
  EXPECT_EQ(out, (std::vector<std::string>{"1:a", "2:x", "1:b"}));
}

TEST(Merger, MLargerThanOne) {
  std::vector<std::string> out;
  DeterministicMerger m({1, 2}, 3, [&](GroupId g, InstanceId i, const paxos::Value&) {
    out.push_back(std::to_string(g) + "@" + std::to_string(i));
  });
  for (InstanceId i = 0; i < 6; ++i) m.on_decision(1, i, val("v"));
  for (InstanceId i = 0; i < 6; ++i) m.on_decision(2, i, val("v"));
  EXPECT_EQ(out, (std::vector<std::string>{"1@0", "1@1", "1@2", "2@0", "2@1",
                                           "2@2", "1@3", "1@4", "1@5", "2@3",
                                           "2@4", "2@5"}));
}

TEST(Merger, SkipsConsumeQuotaSilently) {
  std::vector<std::string> out;
  DeterministicMerger m({1, 2}, 1, [&](GroupId g, InstanceId, const paxos::Value& v) {
    out.push_back(std::to_string(g) + ":" + v.payload.as_string());
  });
  // Group 1: one skip range covering instances 0..4, then a value at 5.
  // Group 2: six values. With M=1 the range is consumed one instance per
  // turn, interleaved with group 2's values.
  m.on_decision(1, 0, paxos::Value::skip({1, 1}, 5));
  m.on_decision(1, 5, val("a"));
  for (InstanceId i = 0; i < 6; ++i) {
    m.on_decision(2, i, val("x" + std::to_string(i)));
  }
  EXPECT_EQ(out, (std::vector<std::string>{"2:x0", "2:x1", "2:x2", "2:x3",
                                           "2:x4", "1:a", "2:x5"}));
  EXPECT_EQ(m.skipped_instances(), 5u);
}

TEST(Merger, SkipRangeSpillsAcrossWindows) {
  // M=2: a range of 3 fills one window and half of the next turn's quota.
  std::vector<std::string> out;
  DeterministicMerger m({1, 2}, 2, [&](GroupId g, InstanceId i, const paxos::Value&) {
    out.push_back(std::to_string(g) + "@" + std::to_string(i));
  });
  m.on_decision(1, 0, paxos::Value::skip({1, 1}, 3));  // 0..2
  m.on_decision(1, 3, val("v"));
  m.on_decision(2, 0, val("v"));
  m.on_decision(2, 1, val("v"));
  m.on_decision(2, 2, val("v"));
  m.on_decision(2, 3, val("v"));
  // Window 1 of g1: skips 0,1. Window of g2: 0,1. Window 2 of g1: skip 2 +
  // value@3. Window of g2: 2,3.
  EXPECT_EQ(out, (std::vector<std::string>{"2@0", "2@1", "1@3", "2@2", "2@3"}));
  EXPECT_EQ(m.skipped_instances(), 3u);
}

TEST(Merger, DuplicateValueRedeliveryIsIgnored) {
  // Recovery replays (retransmission after a checkpoint install) can hand
  // the merger decisions it has already merged; they must be no-ops.
  std::vector<std::string> out;
  DeterministicMerger m({1, 2}, 1, [&](GroupId g, InstanceId, const paxos::Value& v) {
    out.push_back(std::to_string(g) + ":" + v.payload.as_string());
  });
  m.on_decision(1, 0, val("a"));
  m.on_decision(2, 0, val("x"));
  m.on_decision(1, 0, val("a"));  // duplicate redelivery
  m.on_decision(2, 0, val("x"));  // duplicate redelivery
  m.on_decision(1, 1, val("b"));
  m.on_decision(2, 1, val("y"));
  EXPECT_EQ(out, (std::vector<std::string>{"1:a", "2:x", "1:b", "2:y"}));
}

TEST(Merger, DuplicateSkipRangeRedeliveryIsIgnored) {
  std::vector<std::string> out;
  DeterministicMerger m({1, 2}, 1, [&](GroupId g, InstanceId, const paxos::Value& v) {
    out.push_back(std::to_string(g) + ":" + v.payload.as_string());
  });
  m.on_decision(1, 0, paxos::Value::skip({1, 1}, 3));  // covers 0..2
  m.on_decision(2, 0, val("x"));
  m.on_decision(2, 1, val("y"));
  m.on_decision(2, 2, val("z"));
  ASSERT_EQ(m.skipped_instances(), 3u);
  m.on_decision(1, 0, paxos::Value::skip({1, 1}, 3));  // full duplicate
  EXPECT_EQ(m.skipped_instances(), 3u) << "duplicate skip consumed quota twice";
  m.on_decision(1, 3, val("a"));
  m.on_decision(2, 3, val("w"));
  EXPECT_EQ(out, (std::vector<std::string>{"2:x", "2:y", "2:z", "1:a", "2:w"}));
}

TEST(Merger, SkipRangeStraddlingInstalledTupleConsumesOnlySuffix) {
  // A recovering replica installs a checkpoint tuple that lands inside a
  // skip range: the prefix below the tuple is already reflected in the
  // checkpoint, only the suffix may consume merge quota.
  std::vector<std::string> out;
  DeterministicMerger m({1, 2}, 1, [&](GroupId g, InstanceId i, const paxos::Value&) {
    out.push_back(std::to_string(g) + "@" + std::to_string(i));
  });
  m.install_tuple(storage::CheckpointTuple{{1, 3}, {2, 2}});
  m.on_decision(1, 0, paxos::Value::skip({1, 1}, 5));  // 0..4; 3..4 remain
  m.on_decision(1, 5, val("a"));
  m.on_decision(2, 2, val("x"));
  m.on_decision(2, 3, val("y"));
  m.on_decision(2, 4, val("z"));
  // Only instances 3 and 4 of the range consume quota (one per M=1 turn):
  // g1 skips 3, g2 delivers 2; g1 skips 4, g2 delivers 3; then 1@5, 2@4.
  EXPECT_EQ(m.skipped_instances(), 2u);
  EXPECT_EQ(out, (std::vector<std::string>{"2@2", "2@3", "1@5", "2@4"}));
}

TEST(Merger, RedeliveryBelowInstalledTupleIsDiscarded) {
  std::vector<std::string> out;
  DeterministicMerger m({1, 2}, 1, [&](GroupId, InstanceId i, const paxos::Value&) {
    out.push_back(std::to_string(i));
  });
  m.install_tuple(storage::CheckpointTuple{{1, 5}, {2, 0}});
  m.on_decision(1, 4, val("old"));  // fully below the tuple
  m.on_decision(1, 5, val("a"));
  m.on_decision(2, 0, val("x"));
  EXPECT_EQ(out, (std::vector<std::string>{"5", "0"}));
}

TEST(Merger, CrossGroupArrivalOrderDoesNotChangeMergeOrder) {
  // The same per-group streams fed in two different cross-group
  // interleavings (group-2-first vs alternating) must merge identically —
  // including a skip range that reorders around real values.
  auto run = [](bool group2_first) {
    std::vector<std::string> out;
    DeterministicMerger m({1, 2}, 2,
                          [&](GroupId g, InstanceId i, const paxos::Value&) {
                            out.push_back(std::to_string(g) + "@" +
                                          std::to_string(i));
                          });
    auto feed1 = [&](int step) {
      switch (step) {
        case 0: m.on_decision(1, 0, val("a")); break;
        case 1: m.on_decision(1, 1, paxos::Value::skip({1, 1}, 3)); break;
        case 2: m.on_decision(1, 4, val("b")); break;
      }
    };
    auto feed2 = [&](int step) {
      m.on_decision(2, static_cast<InstanceId>(step),
                    val("x" + std::to_string(step)));
    };
    if (group2_first) {
      for (int s = 0; s < 3; ++s) feed2(s);
      for (int s = 0; s < 3; ++s) feed1(s);
    } else {
      for (int s = 0; s < 3; ++s) {
        feed1(s);
        feed2(s);
      }
    }
    return out;
  };
  const auto a = run(true);
  const auto b = run(false);
  EXPECT_EQ(a, b) << "merge order depends on cross-group arrival order";
}

TEST(Merger, TupleReflectsMergedPrefix) {
  DeterministicMerger m({1, 2}, 1, [](GroupId, InstanceId, const paxos::Value&) {});
  m.on_decision(1, 0, val("a"));
  m.on_decision(2, 0, val("x"));
  m.on_decision(1, 1, val("b"));  // merged (group 1's next window)
  auto t = m.tuple();
  EXPECT_EQ(t[1], 2u);
  EXPECT_EQ(t[2], 1u);
}

TEST(Merger, BoundaryHookFiresOncePerRound) {
  int boundaries = 0;
  DeterministicMerger m({1, 2}, 1, [](GroupId, InstanceId, const paxos::Value&) {});
  m.set_boundary_hook([&] { ++boundaries; });
  m.on_decision(1, 0, val("a"));
  EXPECT_EQ(boundaries, 0);
  m.on_decision(2, 0, val("x"));
  EXPECT_EQ(boundaries, 1);
  m.on_decision(1, 1, val("b"));
  m.on_decision(2, 1, val("y"));
  EXPECT_EQ(boundaries, 2);
}

TEST(Merger, PauseBuffersResumeFlushes) {
  std::vector<std::string> out;
  DeterministicMerger m({1}, 1, [&](GroupId, InstanceId, const paxos::Value& v) {
    out.push_back(v.payload.as_string());
  });
  m.pause();
  m.on_decision(1, 0, val("a"));
  m.on_decision(1, 1, val("b"));
  EXPECT_TRUE(out.empty());
  m.resume();
  EXPECT_EQ(out, (std::vector<std::string>{"a", "b"}));
}

TEST(Merger, InstallTupleSkipsForward) {
  std::vector<std::string> out;
  DeterministicMerger m({1, 2}, 1, [&](GroupId, InstanceId i, const paxos::Value&) {
    out.push_back(std::to_string(i));
  });
  storage::CheckpointTuple t{{1, 5}, {2, 3}};
  m.install_tuple(t);
  m.on_decision(1, 5, val("a"));
  m.on_decision(2, 3, val("x"));
  EXPECT_EQ(out, (std::vector<std::string>{"5", "3"}));
}

// --- end-to-end multi-ring tests ---

struct Delivery {
  ProcessId node;
  GroupId group;
  InstanceId instance;
  std::string payload;
};

using Sink = std::function<void(ProcessId, GroupId, InstanceId, const Payload&)>;

class TestNode : public multiring::MultiRingNode {
 public:
  TestNode(sim::Env& env, ProcessId id, coord::Registry* reg,
           multiring::NodeConfig cfg, std::shared_ptr<Sink> sink)
      : MultiRingNode(env, id, reg, std::move(cfg)) {
    set_deliver([this, sink](GroupId g, InstanceId i, const Payload& p) {
      (*sink)(this->id(), g, i, p);
    });
  }
};

class MultiRingTest : public ::testing::Test {
 protected:
  /// Two rings: nodes 1-3 are members of both; node 4 is a member of ring 2
  /// only (the paper's Figure 2(c) layout, with L3 subscribing ring 2).
  void build_fig2c(double lambda = 2000) {
    ringpaxos::RingParams p;
    p.lambda = lambda;
    p.skip_interval = 5 * kMillisecond;

    coord::RingConfig r1;
    r1.ring = 1;
    r1.order = {1, 2, 3};
    r1.acceptors = {1, 2, 3};
    registry_->create_ring(r1);

    coord::RingConfig r2;
    r2.ring = 2;
    r2.order = {1, 2, 3, 4};
    r2.acceptors = {1, 2, 3};
    registry_->create_ring(r2);

    multiring::NodeConfig both;
    both.rings = {multiring::RingSub{1, p, true},
                  multiring::RingSub{2, p, true}};
    multiring::NodeConfig only2;
    only2.rings = {multiring::RingSub{2, p, true}};

    for (ProcessId n : {1, 2, 3}) {
      env_.spawn<TestNode>(n, registry_.get(), both, sink_);
    }
    env_.spawn<TestNode>(4, registry_.get(), only2, sink_);
  }

  std::vector<Delivery> delivered_at(ProcessId n) const {
    std::vector<Delivery> out;
    for (const auto& d : deliveries_) {
      if (d.node == n) out.push_back(d);
    }
    return out;
  }

  sim::Env env_{42};
  std::unique_ptr<coord::Registry> registry_ =
      std::make_unique<coord::Registry>(env_);
  std::vector<Delivery> deliveries_;
  std::shared_ptr<Sink> sink_ = std::make_shared<Sink>(
      [this](ProcessId n, GroupId g, InstanceId i, const Payload& p) {
        deliveries_.push_back({n, g, i, p.as_string()});
      });
};

TEST_F(MultiRingTest, LearnersWithSameSubscriptionsDeliverIdentically) {
  build_fig2c();
  env_.sim().run_for(from_millis(20));
  for (int i = 0; i < 30; ++i) {
    const GroupId g = (i % 2) + 1;
    env_.process_as<TestNode>(1)->multicast(g, Payload("m" + std::to_string(i)));
    env_.sim().run_for(from_millis(3));
  }
  env_.sim().run_for(from_millis(1000));

  auto d1 = delivered_at(1);
  auto d2 = delivered_at(2);
  auto d3 = delivered_at(3);
  ASSERT_EQ(d1.size(), 30u);
  ASSERT_EQ(d2.size(), d1.size());
  ASSERT_EQ(d3.size(), d1.size());
  for (std::size_t i = 0; i < d1.size(); ++i) {
    EXPECT_EQ(d1[i].payload, d2[i].payload) << "diverged at " << i;
    EXPECT_EQ(d1[i].payload, d3[i].payload) << "diverged at " << i;
  }
}

TEST_F(MultiRingTest, PartialSubscriberSeesOnlyItsGroup) {
  build_fig2c();
  env_.sim().run_for(from_millis(20));
  for (int i = 0; i < 10; ++i) {
    env_.process_as<TestNode>(1)->multicast(1, Payload("g1-" + std::to_string(i)));
    env_.process_as<TestNode>(1)->multicast(2, Payload("g2-" + std::to_string(i)));
  }
  env_.sim().run_for(from_millis(1000));

  auto d4 = delivered_at(4);
  ASSERT_EQ(d4.size(), 10u);
  for (auto& d : d4) {
    EXPECT_EQ(d.group, 2);
    EXPECT_EQ(d.payload.substr(0, 3), "g2-");
  }
}

TEST_F(MultiRingTest, GroupStreamsAgreeAcrossDifferentPartitions) {
  build_fig2c();
  env_.sim().run_for(from_millis(20));
  for (int i = 0; i < 12; ++i) {
    env_.process_as<TestNode>(2)->multicast(2, Payload("z" + std::to_string(i)));
    env_.sim().run_for(from_millis(2));
  }
  env_.sim().run_for(from_millis(1000));

  // Node 1 (subscribes 1+2) and node 4 (subscribes 2 only) must see the
  // same ring-2 message sequence.
  std::vector<std::string> s1, s4;
  for (auto& d : delivered_at(1)) {
    if (d.group == 2) s1.push_back(d.payload);
  }
  for (auto& d : delivered_at(4)) s4.push_back(d.payload);
  EXPECT_EQ(s1, s4);
}

TEST_F(MultiRingTest, IdleRingDoesNotBlockLoadedRing) {
  build_fig2c(/*lambda=*/2000);
  env_.sim().run_for(from_millis(20));
  // Only ring 1 carries traffic; ring 2 is idle and must be filled by
  // rate-leveling skips so that nodes 1-3 keep delivering ring 1.
  for (int i = 0; i < 20; ++i) {
    env_.process_as<TestNode>(3)->multicast(1, Payload("only1-" + std::to_string(i)));
    env_.sim().run_for(from_millis(2));
  }
  env_.sim().run_for(from_millis(1000));
  EXPECT_EQ(delivered_at(1).size(), 20u);
  EXPECT_EQ(delivered_at(2).size(), 20u);
}

TEST_F(MultiRingTest, WithoutRateLevelingIdleRingStallsMerge) {
  build_fig2c(/*lambda=*/0);  // rate leveling off
  env_.sim().run_for(from_millis(20));
  env_.process_as<TestNode>(1)->multicast(1, Payload(std::string("lonely")));
  env_.sim().run_for(from_millis(500));
  // One message in ring 1 can be delivered (merge starts at ring 1), but a
  // second must stall waiting for ring 2 traffic.
  env_.process_as<TestNode>(1)->multicast(1, Payload(std::string("stuck")));
  env_.sim().run_for(from_millis(500));
  auto d1 = delivered_at(1);
  ASSERT_EQ(d1.size(), 1u);
  EXPECT_EQ(d1[0].payload, "lonely");
  // Traffic on ring 2 unblocks the merge.
  env_.process_as<TestNode>(1)->multicast(2, Payload(std::string("unblock")));
  env_.sim().run_for(from_millis(500));
  EXPECT_EQ(delivered_at(1).size(), 3u);
}

TEST_F(MultiRingTest, CrossGroupDeliveryRelationIsAcyclic) {
  build_fig2c();
  env_.sim().run_for(from_millis(20));
  for (int i = 0; i < 20; ++i) {
    env_.process_as<TestNode>(1)->multicast((i % 2) + 1,
                                            Payload("c" + std::to_string(i)));
    env_.sim().run_for(from_millis(1));
  }
  env_.sim().run_for(from_millis(1000));

  // Build the global delivery-order relation: for every ordered pair of
  // messages delivered by some node, record an edge; the union must stay
  // consistent (no node orders m before m' while another orders m' before
  // m). With identical subscriptions for nodes 1-3 and a subset for node 4,
  // pairwise consistency is exactly the paper's acyclic-order property.
  std::map<std::string, std::map<std::string, bool>> before;
  for (ProcessId n : {1, 2, 3, 4}) {
    auto ds = delivered_at(n);
    for (std::size_t i = 0; i < ds.size(); ++i) {
      for (std::size_t j = i + 1; j < ds.size(); ++j) {
        before[ds[i].payload][ds[j].payload] = true;
      }
    }
  }
  for (const auto& [a, succ] : before) {
    for (const auto& [b, _] : succ) {
      EXPECT_FALSE(before.count(b) && before.at(b).count(a))
          << "cycle: " << a << " <-> " << b;
    }
  }
}

// ---------------------------------------------------------------------------
// Epoch-aware merger: groups joining and leaving the rotation.

TEST(MergerDynamic, EmptyMergerDeliversNothingUntilFirstGroup) {
  std::vector<std::string> out;
  DeterministicMerger m({}, 1, [&](GroupId g, InstanceId, const paxos::Value& v) {
    out.push_back(std::to_string(g) + ":" + v.payload.as_string());
  });
  EXPECT_TRUE(m.at_round_boundary());
  EXPECT_EQ(m.waiting_on(), -1);
  m.add_group(3);  // at a boundary: active immediately
  m.on_decision(3, 0, val("a"));
  EXPECT_EQ(out, (std::vector<std::string>{"3:a"}));
}

TEST(MergerDynamic, AddGroupActivatesAtNextRoundBoundary) {
  std::vector<std::string> out;
  DeterministicMerger m({1}, 2, [&](GroupId g, InstanceId i, const paxos::Value&) {
    out.push_back(std::to_string(g) + "@" + std::to_string(i));
  });
  m.on_decision(1, 0, val("v"));  // mid-window: consumed 1 of M=2
  m.add_group(2);
  // Decisions for the pending group buffer without consuming quota.
  m.on_decision(2, 0, val("v"));
  m.on_decision(2, 1, val("v"));
  EXPECT_EQ(out, (std::vector<std::string>{"1@0"}));
  // Completing group 1's window crosses the boundary; group 2 splices in
  // and the next round runs 1's window, then 2's buffered window.
  m.on_decision(1, 1, val("v"));
  EXPECT_EQ(m.groups(), (std::vector<GroupId>{1, 2}));
  m.on_decision(1, 2, val("v"));
  m.on_decision(1, 3, val("v"));
  EXPECT_EQ(out, (std::vector<std::string>{"1@0", "1@1", "1@2", "1@3", "2@0",
                                           "2@1"}));
}

TEST(MergerDynamic, JoinerStartsAtInstalledStartInstance) {
  std::vector<std::string> out;
  DeterministicMerger m({1}, 1, [&](GroupId g, InstanceId i, const paxos::Value&) {
    out.push_back(std::to_string(g) + "@" + std::to_string(i));
  });
  // Join group 5 mid-stream at instance 40 (bootstrapped from a
  // checkpoint): earlier instances are already covered by the state.
  m.add_group(5, 40);
  m.on_decision(5, 40, val("v"));
  m.on_decision(1, 0, val("v"));
  EXPECT_EQ(out, (std::vector<std::string>{"1@0", "5@40"}));
}

TEST(MergerDynamic, RemoveGroupRetiresAtItsNextTurn) {
  std::vector<std::string> out;
  DeterministicMerger m({1, 2}, 1, [&](GroupId g, InstanceId i, const paxos::Value&) {
    out.push_back(std::to_string(g) + "@" + std::to_string(i));
  });
  m.on_decision(1, 0, val("v"));
  // Cursor now waits on group 2's turn. Retiring group 2 releases the
  // rotation even though the group never produces another decision (its
  // handler may already be gone).
  m.remove_group(2);
  EXPECT_EQ(m.groups(), (std::vector<GroupId>{1}));
  m.on_decision(1, 1, val("v"));
  m.on_decision(1, 2, val("v"));
  EXPECT_EQ(out, (std::vector<std::string>{"1@0", "1@1", "1@2"}));
}

TEST(MergerDynamic, RemoveDuringDeliveryRetiresAfterTheCallback) {
  // The control-command pattern: a delivered message of group 2 makes the
  // learner unsubscribe group 2 (same point on every peer).
  std::vector<std::string> out;
  DeterministicMerger* mp = nullptr;
  DeterministicMerger m({1, 2}, 1, [&](GroupId g, InstanceId i, const paxos::Value&) {
    out.push_back(std::to_string(g) + "@" + std::to_string(i));
    if (g == 2 && i == 0) mp->remove_group(2);
  });
  mp = &m;
  m.on_decision(1, 0, val("v"));
  m.on_decision(1, 1, val("v"));
  m.on_decision(2, 0, val("v"));
  m.on_decision(1, 2, val("v"));
  EXPECT_EQ(out, (std::vector<std::string>{"1@0", "2@0", "1@1", "1@2"}));
  EXPECT_EQ(m.groups(), (std::vector<GroupId>{1}));
}

TEST(MergerDynamic, RoundCounterAdvancesPerCompletedRound) {
  DeterministicMerger m({1, 2}, 2, [](GroupId, InstanceId, const paxos::Value&) {});
  EXPECT_EQ(m.round(), 0u);
  for (InstanceId i = 0; i < 4; ++i) m.on_decision(1, i, val("v"));
  for (InstanceId i = 0; i < 4; ++i) m.on_decision(2, i, val("v"));
  EXPECT_EQ(m.round(), 2u);
  EXPECT_TRUE(m.at_round_boundary());
}

TEST(MergerDynamic, PendingAddCancelledByRemove) {
  std::vector<std::string> out;
  DeterministicMerger m({1}, 2, [&](GroupId g, InstanceId i, const paxos::Value&) {
    out.push_back(std::to_string(g) + "@" + std::to_string(i));
  });
  m.on_decision(1, 0, val("v"));  // mid-window
  m.add_group(2);
  m.remove_group(2);  // cancelled before activation
  m.on_decision(1, 1, val("v"));
  m.on_decision(1, 2, val("v"));
  m.on_decision(1, 3, val("v"));
  EXPECT_EQ(m.groups(), (std::vector<GroupId>{1}));
  EXPECT_EQ(out.size(), 4u);
}

// ---------------------------------------------------------------------------
// Node-level dynamic subscriptions: learners that join a ring when an
// ordered control message tells them to produce identical merged sequences.

TEST_F(MultiRingTest, OrderedJoinKeepsMergedSequencesIdentical) {
  ringpaxos::RingParams p;
  p.lambda = 2000;
  p.skip_interval = 5 * kMillisecond;

  coord::RingConfig r1;
  r1.ring = 1;
  r1.order = {1, 2, 3};
  r1.acceptors = {1, 2, 3};
  registry_->create_ring(r1);
  coord::RingConfig r2;
  r2.ring = 2;
  r2.order = {1, 2, 3};
  r2.acceptors = {1, 2, 3};
  registry_->create_ring(r2);

  // All nodes subscribe ring 1 only; a control payload delivered through
  // ring 1 makes each learner attach ring 2 at that (identical) point.
  auto join_sink = std::make_shared<Sink>(
      [this, p](ProcessId n, GroupId g, InstanceId i, const Payload& pay) {
        deliveries_.push_back({n, g, i, pay.as_string()});
        if (pay.as_string() == "join2") {
          env_.process_as<TestNode>(n)->attach_ring(
              multiring::RingSub{2, p, true});
        }
      });
  multiring::NodeConfig only1;
  only1.rings = {multiring::RingSub{1, p, true}};
  for (ProcessId n : {1, 2, 3}) {
    env_.spawn<TestNode>(n, registry_.get(), only1, join_sink);
  }
  env_.sim().run_for(from_millis(50));

  for (int i = 0; i < 5; ++i) {
    env_.process_as<TestNode>(1)->multicast(1, Payload("a" + std::to_string(i)));
    env_.sim().run_for(from_millis(3));
  }
  env_.process_as<TestNode>(1)->multicast(1, Payload("join2"));
  env_.sim().run_for(from_millis(50));

  // Every node now owns a ring-2 handler and can multicast to it.
  for (int i = 0; i < 10; ++i) {
    const GroupId g = (i % 2) + 1;
    env_.process_as<TestNode>(2)->multicast(g, Payload("b" + std::to_string(i)));
    env_.sim().run_for(from_millis(3));
  }
  env_.sim().run_for(from_millis(1000));

  auto d1 = delivered_at(1);
  auto d2 = delivered_at(2);
  auto d3 = delivered_at(3);
  ASSERT_EQ(d1.size(), 16u);  // 5 + join + 10
  ASSERT_EQ(d2.size(), d1.size());
  ASSERT_EQ(d3.size(), d1.size());
  bool saw_ring2 = false;
  for (std::size_t i = 0; i < d1.size(); ++i) {
    EXPECT_EQ(d1[i].payload, d2[i].payload) << "diverged at " << i;
    EXPECT_EQ(d1[i].payload, d3[i].payload) << "diverged at " << i;
    EXPECT_EQ(d1[i].group, d2[i].group) << "diverged at " << i;
    saw_ring2 = saw_ring2 || d1[i].group == 2;
  }
  EXPECT_TRUE(saw_ring2) << "ring-2 stream never joined the merge";
  // The registry saw the subscription epoch bump.
  EXPECT_EQ(registry_->subscriptions(1), (std::vector<GroupId>{1, 2}));
  EXPECT_GE(registry_->subscription_epoch(1), 2u);
}

TEST_F(MultiRingTest, OrderedLeaveDetachesHandlerAndKeepsMergeFlowing) {
  build_fig2c();
  env_.sim().run_for(from_millis(50));

  // Nodes 1-3 deliver {1, 2}. A control message on ring 1 detaches ring 2
  // everywhere at the same merged position.
  for (int i = 0; i < 4; ++i) {
    env_.process_as<TestNode>(1)->multicast((i % 2) + 1,
                                            Payload("m" + std::to_string(i)));
    env_.sim().run_for(from_millis(3));
  }
  env_.sim().run_for(from_millis(200));
  for (ProcessId n : {1, 2, 3}) {
    env_.process_as<TestNode>(n)->detach_ring(2);
    EXPECT_EQ(env_.process_as<TestNode>(n)->handler(2), nullptr);
  }

  // Ring 1 keeps delivering even though ring 2's streams are gone.
  const std::size_t before = deliveries_.size();
  for (int i = 0; i < 6; ++i) {
    env_.process_as<TestNode>(1)->multicast(1, Payload("x" + std::to_string(i)));
    env_.sim().run_for(from_millis(3));
  }
  env_.sim().run_for(from_millis(500));
  std::size_t after_ring1 = 0;
  for (const auto& d : deliveries_) {
    if (d.node == 1 && d.payload.rfind("x", 0) == 0) ++after_ring1;
  }
  EXPECT_EQ(after_ring1, 6u);
  EXPECT_GT(deliveries_.size(), before);
  EXPECT_EQ(registry_->subscriptions(1), (std::vector<GroupId>{1}));
}

}  // namespace
}  // namespace mrp
