// Recovery protocol tests (Section 5.2): checkpointing at merge boundaries,
// the trim protocol's quorum predicates, replica recovery from local and
// remote checkpoints, and state convergence after failures.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "coord/registry.hpp"
#include "mrpstore/client.hpp"
#include "mrpstore/store.hpp"
#include "sim/env.hpp"
#include "smr/client.hpp"
#include "smr/replica.hpp"

namespace mrp {
namespace {

class RecoveryTest : public ::testing::Test {
 protected:
  static constexpr ProcessId kClientPid = 900;

  /// One partition, three replicas, one ring; fast checkpoint/trim timers.
  void build(TimeNs checkpoint_interval = 500 * kMillisecond,
             TimeNs trim_interval = kSecond) {
    mrpstore::StoreOptions so;
    so.partitions = 1;
    so.replicas_per_partition = 3;
    so.global_ring = false;
    so.ring_params.gap_timeout = 20 * kMillisecond;
    so.replica_options.checkpoint.interval = checkpoint_interval;
    so.replica_options.trim.interval = trim_interval;
    deployment_ = mrpstore::build_store(env_, *registry_, so);
    client_ = std::make_unique<mrpstore::StoreClient>(deployment_);
  }

  /// Starts a closed-loop writer issuing inserts over a small key space.
  void start_writer() {
    smr::ClientNode::Options copts;
    copts.workers = 4;
    copts.retry_timeout = kSecond;
    writer_ = env_.spawn<smr::ClientNode>(
        kClientPid, copts,
        smr::ClientNode::NextFn([this](std::uint32_t) {
          const std::string key = "k" + std::to_string(next_key_++ % 64);
          return client_->insert(key, to_bytes("v" + std::to_string(next_key_)));
        }),
        smr::ClientNode::DoneFn([this](const smr::Completion&) { ++completed_; }));
  }

  smr::ReplicaNode* replica(std::size_t i) {
    return env_.process_as<smr::ReplicaNode>(deployment_.replicas[0][i]);
  }

  mrpstore::KvStateMachine& kv(std::size_t i) {
    return dynamic_cast<mrpstore::KvStateMachine&>(replica(i)->state_machine());
  }

  void quiesce() {
    writer_->stop();
    env_.sim().run_for(from_seconds(3));
  }

  sim::Env env_{7};
  std::unique_ptr<coord::Registry> registry_ =
      std::make_unique<coord::Registry>(env_, 50 * kMillisecond);
  mrpstore::StoreDeployment deployment_;
  std::unique_ptr<mrpstore::StoreClient> client_;
  smr::ClientNode* writer_ = nullptr;
  std::uint64_t next_key_ = 0;
  std::uint64_t completed_ = 0;
};

TEST_F(RecoveryTest, CheckpointsAreTakenAndDurable) {
  build();
  start_writer();
  env_.sim().run_for(from_seconds(3));
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_GE(replica(i)->checkpointer().checkpoints_taken(), 2u)
        << "replica " << i;
    const auto& t = replica(i)->checkpointer().durable_tuple();
    ASSERT_EQ(t.size(), 1u);
    EXPECT_GT(t.begin()->second, 0u);
  }
}

TEST_F(RecoveryTest, TrimNeverPassesDurableQuorumCheckpoint) {
  build();
  start_writer();
  env_.sim().run_for(from_seconds(5));
  // Predicate 2: K_T <= k_p for every replica in the trim quorum. With all
  // three replicas answering, K_T <= min over all durable tuples.
  for (std::size_t i = 0; i < 3; ++i) {
    auto* log = replica(i)->handler(deployment_.partition_groups[0])->log();
    ASSERT_NE(log, nullptr);
    if (log->trimmed_to() == 0) continue;
    for (std::size_t j = 0; j < 3; ++j) {
      const auto& t = replica(j)->checkpointer().durable_tuple();
      if (t.empty()) continue;
      EXPECT_LE(log->trimmed_to(), t.begin()->second)
          << "acceptor " << i << " trimmed past replica " << j;
    }
  }
}

TEST_F(RecoveryTest, TrimActuallyHappens) {
  build(300 * kMillisecond, 600 * kMillisecond);
  start_writer();
  env_.sim().run_for(from_seconds(6));
  auto* log = replica(0)->handler(deployment_.partition_groups[0])->log();
  EXPECT_GT(log->trimmed_to(), 0u) << "log was never trimmed";
  EXPECT_GE(replica(0)->trim_protocol().trims_issued() +
                replica(1)->trim_protocol().trims_issued() +
                replica(2)->trim_protocol().trims_issued(),
            1u);
}

TEST_F(RecoveryTest, ReplicaRecoversAndConverges) {
  build();
  start_writer();
  env_.sim().run_for(from_seconds(2));
  const ProcessId victim = deployment_.replicas[0][2];
  env_.crash(victim);
  env_.sim().run_for(from_seconds(2));
  env_.recover(victim);
  env_.sim().run_for(from_seconds(3));
  quiesce();

  const auto d0 = kv(0).digest();
  EXPECT_EQ(d0, kv(1).digest());
  EXPECT_EQ(d0, kv(2).digest()) << "recovered replica diverged";
  EXPECT_GT(kv(2).size(), 0u);
}

TEST_F(RecoveryTest, RecoveryViaRemoteCheckpointAfterTrim) {
  build(200 * kMillisecond, 400 * kMillisecond);
  start_writer();
  env_.sim().run_for(from_seconds(2));
  const ProcessId victim = deployment_.replicas[0][2];
  env_.crash(victim);
  // Long outage: acceptors trim far past the victim's last checkpoint.
  env_.sim().run_for(from_seconds(10));
  auto* log = replica(0)->handler(deployment_.partition_groups[0])->log();
  ASSERT_GT(log->trimmed_to(), 0u);
  env_.recover(victim);
  env_.sim().run_for(from_seconds(5));
  quiesce();

  const auto d0 = kv(0).digest();
  EXPECT_EQ(d0, kv(2).digest()) << "remote-checkpoint recovery diverged";
}

TEST_F(RecoveryTest, AllReplicasCrashAndRecoverFromStableStorage) {
  build();
  start_writer();
  env_.sim().run_for(from_seconds(3));
  writer_->stop();
  env_.sim().run_for(from_seconds(1));

  const auto before = kv(0).digest();
  for (ProcessId r : deployment_.replicas[0]) env_.crash(r);
  env_.sim().run_for(from_seconds(1));
  for (ProcessId r : deployment_.replicas[0]) env_.recover(r);
  env_.sim().run_for(from_seconds(5));

  // Every replica rebuilt its state from checkpoint + acceptor logs.
  EXPECT_EQ(kv(0).digest(), before);
  EXPECT_EQ(kv(1).digest(), before);
  EXPECT_EQ(kv(2).digest(), before);
}

TEST_F(RecoveryTest, ServiceAvailableDuringSingleReplicaOutage) {
  build();
  start_writer();
  env_.sim().run_for(from_seconds(1));
  const auto before = completed_;
  env_.crash(deployment_.replicas[0][1]);
  env_.sim().run_for(from_seconds(2));
  EXPECT_GT(completed_, before + 50)
      << "service stalled during one-replica outage";
}

TEST_F(RecoveryTest, CheckpointTuplesComparableAcrossReplicas) {
  build(200 * kMillisecond);
  start_writer();
  env_.sim().run_for(from_seconds(4));
  // Predicate 1 consequence: any two durable tuples in a partition must be
  // componentwise comparable (checkpoints only at merge-round boundaries).
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      const auto& a = replica(i)->checkpointer().durable_tuple();
      const auto& b = replica(j)->checkpointer().durable_tuple();
      if (a.empty() || b.empty()) continue;
      EXPECT_TRUE(storage::tuple_leq(a, b) || storage::tuple_leq(b, a));
    }
  }
}

}  // namespace
}  // namespace mrp
