// Acceptor-set reconfiguration: quorum-safety properties (combinatorial
// model checks over vote-mask majorities) plus end-to-end sim coverage —
// decided values survive any add/remove/replace sequence under live load,
// and no two nodes ever observe diverging delivery orders.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "coord/registry.hpp"
#include "multiring/node.hpp"
#include "paxos/paxos.hpp"
#include "sim/env.hpp"

namespace mrp {
namespace {

// --- combinatorial model ----------------------------------------------------
// Bases are bitmasks over at most 12 processes; a quorum of basis B is any
// subset of B with |subset| >= |B|/2 + 1.

int popcount(unsigned x) { return __builtin_popcount(x); }

std::vector<unsigned> majorities(unsigned basis) {
  const int n = popcount(basis);
  const int q = n / 2 + 1;
  std::vector<unsigned> out;
  for (unsigned s = basis;; s = (s - 1) & basis) {
    if (popcount(s) >= q) out.push_back(s);
    if (s == 0) break;
  }
  return out;
}

bool all_majorities_intersect(unsigned a, unsigned b) {
  for (unsigned qa : majorities(a)) {
    for (unsigned qb : majorities(b)) {
      if ((qa & qb) == 0) return false;
    }
  }
  return true;
}

TEST(QuorumSafetyProperty, SingleStepAddAndRemovePreserveIntersection) {
  // The registry activates add (n -> n+1) and remove (n -> n-1) without any
  // catch-up barrier beyond the joiner's log sync; that is sound only if
  // every old-basis majority intersects every new-basis majority, so a value
  // decided under either basis is seen by any later Phase 1 under the other.
  for (int n = 1; n <= 7; ++n) {
    const unsigned basis = (1u << n) - 1;
    // Add each possible new member.
    const unsigned grown = basis | (1u << n);
    EXPECT_TRUE(all_majorities_intersect(basis, grown)) << "add at n=" << n;
    // Remove each member.
    for (int r = 0; r < n && n > 1; ++r) {
      const unsigned shrunk = basis & ~(1u << r);
      EXPECT_TRUE(all_majorities_intersect(basis, shrunk))
          << "remove bit " << r << " at n=" << n;
    }
  }
}

TEST(QuorumSafetyProperty, ReplaceAloneBreaksIntersection) {
  // The counterexample that forces the union-sync design: {A,B,C} ->
  // {A,B,D} admits the disjoint majorities {A,C} (old) and {B,D} (new).
  // A naive swap could therefore decide two different values for one
  // instance; the registry must not activate a replace on intersection
  // grounds alone.
  const unsigned old_basis = 0b0111;  // A=0, B=1, C=2
  const unsigned new_basis = 0b1011;  // C replaced by D=3
  EXPECT_FALSE(all_majorities_intersect(old_basis, new_basis));
}

TEST(QuorumSafetyProperty, SourceUnionCoversEveryDecidedInstance) {
  // What makes replace safe instead: the registry requires
  // |sources| + quorum > n, where the sources are the alive acceptors minus
  // the one being replaced (its log leaves the basis at activation, so it
  // must not count even if it is still up), and the joiner drains the union
  // of exactly those source logs. Then every old-basis majority (any set
  // that could have decided an instance) intersects the source set, so the
  // union holds at least one record of every decided instance. Check
  // exhaustively for all bases and source-sets up to n=7.
  for (int n = 1; n <= 7; ++n) {
    const unsigned basis = (1u << n) - 1;
    const int q = n / 2 + 1;
    for (unsigned sources = 0; sources <= basis; ++sources) {
      if ((sources & basis) != sources) continue;
      const bool precondition = popcount(sources) + q > n;
      bool covered = true;  // every majority intersects `sources`
      for (unsigned m : majorities(basis)) {
        if ((m & sources) == 0) covered = false;
      }
      if (precondition) {
        EXPECT_TRUE(covered) << "n=" << n << " sources=" << sources;
      } else {
        // The precondition is also tight: below it some majority holds no
        // source, i.e. a decided instance may exist the joiner never sees.
        EXPECT_FALSE(covered) << "n=" << n << " sources=" << sources;
      }
    }
  }
}

TEST(QuorumSafetyProperty, VoteMasksFromDifferentBasesNeverMix) {
  // Positional vote bits: acceptor X's bit index differs between bases, so
  // counting a mask minted under basis {1,2,3} against basis {1,2,4} could
  // fabricate a quorum. The handlers fence on acceptor_view; this model
  // check documents why: the same mask value means different acceptor sets.
  // Mask 0b101 under {1,2,3} = {1,3}; under {1,2,4} = {1,4}. If 3 voted but
  // 4 did not, treating the mask as valid under the new basis invents 4's
  // vote.
  EXPECT_TRUE(paxos::is_quorum(0b101, 3));
  EXPECT_TRUE(paxos::is_quorum(0b101, 3));  // same bits, either basis: the
  // mask itself cannot tell — only the aview fence can.
}

// --- end-to-end: reconfiguration under live load ----------------------------

using Sink = std::function<void(ProcessId, GroupId, InstanceId, const Payload&)>;

class TestNode : public multiring::MultiRingNode {
 public:
  TestNode(sim::Env& env, ProcessId id, coord::Registry* reg,
           multiring::NodeConfig cfg, std::shared_ptr<Sink> sink)
      : MultiRingNode(env, id, reg, std::move(cfg)) {
    set_deliver([this, sink](GroupId g, InstanceId i, const Payload& p) {
      (*sink)(this->id(), g, i, p);
    });
  }
};

class ReconfigTest : public ::testing::Test {
 protected:
  /// `acceptors` acceptor-learners plus `learners` learner-only members.
  void build(int acceptors, int learners, coord::FdParams fd = {},
             std::vector<ProcessId> standbys = {}) {
    n_total_ = acceptors + learners;
    coord::RingConfig cfg;
    cfg.ring = 0;
    cfg.fd = fd;
    cfg.standbys = std::move(standbys);
    for (int i = 1; i <= n_total_; ++i) {
      cfg.order.push_back(i);
      if (i <= acceptors) cfg.acceptors.insert(i);
    }
    registry_->create_ring(cfg);
    multiring::NodeConfig node_cfg;
    node_cfg.rings.push_back(multiring::RingSub{0, {}, true});
    for (int i = 1; i <= n_total_; ++i) {
      env_.spawn<TestNode>(i, registry_.get(), node_cfg, sink_);
    }
    env_.sim().run_for(from_millis(10));
  }

  TestNode* node(ProcessId id) { return env_.process_as<TestNode>(id); }

  void send_batch(ProcessId via, int count) {
    for (int i = 0; i < count; ++i) {
      node(via)->multicast(0, Payload("v" + std::to_string(sent_++)));
    }
  }

  std::vector<std::string> delivered_seq(ProcessId n) {
    std::vector<std::string> out;
    for (auto& [node_id, payload] : deliveries_) {
      if (node_id == n) out.push_back(payload);
    }
    return out;
  }

  /// Every sent value delivered exactly once at `n`, and delivery orders of
  /// all listed nodes are identical (no divergence).
  void expect_complete_and_consistent(std::initializer_list<ProcessId> nodes) {
    const std::vector<std::string> ref = delivered_seq(*nodes.begin());
    std::set<std::string> ref_set(ref.begin(), ref.end());
    EXPECT_EQ(ref.size(), ref_set.size()) << "duplicate delivery";
    for (int i = 0; i < sent_; ++i) {
      EXPECT_TRUE(ref_set.count("v" + std::to_string(i)))
          << "lost v" << i << " at node " << *nodes.begin();
    }
    for (ProcessId n : nodes) {
      EXPECT_EQ(delivered_seq(n), ref) << "node " << n << " diverged";
    }
  }

  int n_total_ = 0;
  int sent_ = 0;
  sim::Env env_{777};
  std::unique_ptr<coord::Registry> registry_ =
      std::make_unique<coord::Registry>(env_, 50 * kMillisecond);
  std::vector<std::pair<ProcessId, std::string>> deliveries_;
  std::shared_ptr<Sink> sink_ = std::make_shared<Sink>(
      [this](ProcessId n, GroupId, InstanceId, const Payload& p) {
        deliveries_.emplace_back(n, p.as_string());
      });
};

TEST_F(ReconfigTest, AddAcceptorUnderLoad) {
  build(3, 1);  // node 4 is a learner, about to be promoted
  send_batch(1, 20);
  env_.sim().run_for(from_millis(300));
  registry_->add_acceptor(0, 4);
  send_batch(2, 20);  // load continues through the catch-up window
  env_.sim().run_for(from_seconds(2));
  EXPECT_FALSE(registry_->change_pending(0));
  EXPECT_EQ(registry_->current_view(0).total_acceptors, 4u);
  EXPECT_TRUE(node(4)->handler(0)->is_acceptor());
  ASSERT_NE(node(4)->handler(0)->log(), nullptr);
  send_batch(4, 10);  // the promoted acceptor proposes too
  env_.sim().run_for(from_seconds(2));
  expect_complete_and_consistent({1, 2, 3, 4});
}

TEST_F(ReconfigTest, RemoveAcceptorUnderLoad) {
  build(3, 0);
  send_batch(1, 15);
  env_.sim().run_for(from_millis(300));
  registry_->remove_acceptor(0, 3);
  send_batch(1, 15);
  env_.sim().run_for(from_seconds(2));
  EXPECT_EQ(registry_->current_view(0).total_acceptors, 2u);
  EXPECT_FALSE(node(3)->handler(0)->is_acceptor());
  // The demoted acceptor keeps delivering as a learner.
  expect_complete_and_consistent({1, 2, 3});
}

TEST_F(ReconfigTest, ReplaceDeadAcceptorRestoresFullQuorum) {
  build(3, 1);
  send_batch(1, 20);
  env_.sim().run_for(from_millis(300));
  env_.crash(3);  // permanent
  env_.sim().run_for(from_millis(200));
  send_batch(1, 10);  // ring runs degraded on quorum {1,2}
  env_.sim().run_for(from_millis(500));
  registry_->replace_acceptor(0, 3, 4);
  env_.sim().run_for(from_seconds(2));
  EXPECT_FALSE(registry_->change_pending(0));
  const coord::RingView& v = registry_->current_view(0);
  EXPECT_EQ(v.configured_acceptors, (std::vector<ProcessId>{1, 2, 4}));
  EXPECT_FALSE(v.contains(3));
  EXPECT_TRUE(node(4)->handler(0)->is_acceptor());
  send_batch(2, 10);
  env_.sim().run_for(from_seconds(2));
  // Survivors agree on the full history — including values decided under
  // the old basis before the crash (caught up from the union of alive logs).
  expect_complete_and_consistent({1, 2, 4});
}

TEST_F(ReconfigTest, ReplaceAliveAcceptorUnderLoad) {
  // Planned decommission: the replaced acceptor is still up. Its log is
  // excluded from the catch-up sources (it leaves the basis), so the
  // remaining alive acceptors must cover every decided instance on their
  // own — here {1,2} do, and the full history survives the swap.
  build(3, 1);
  send_batch(1, 20);
  env_.sim().run_for(from_millis(300));
  registry_->replace_acceptor(0, 3, 4);  // 3 is alive throughout
  send_batch(2, 10);
  env_.sim().run_for(from_seconds(2));
  EXPECT_FALSE(registry_->change_pending(0));
  const coord::RingView& v = registry_->current_view(0);
  EXPECT_EQ(v.configured_acceptors, (std::vector<ProcessId>{1, 2, 4}));
  EXPECT_TRUE(node(4)->handler(0)->is_acceptor());
  send_batch(1, 10);
  env_.sim().run_for(from_seconds(2));
  expect_complete_and_consistent({1, 2, 4});
}

TEST_F(ReconfigTest, ReplaceAliveAcceptorRefusedWhenSourcesInsufficient) {
  // Regression: the safety gate must count catch-up SOURCES, not alive
  // acceptors. With 2 dead and the still-alive 3 being replaced, only
  // {1} can serve the joiner — a decided instance whose quorum was {2,3}
  // would be lost. Counting 3 as "alive" used to let this through.
  build(3, 1);
  send_batch(1, 10);
  env_.sim().run_for(from_millis(300));
  env_.crash(2);
  env_.sim().run_for(from_millis(100));
  EXPECT_DEATH(registry_->replace_acceptor(0, 3, 4),
               "too many dead acceptors");
}

TEST_F(ReconfigTest, AllSourcesDeadMidCatchupAbandonsChange) {
  // Regression: a pure add whose every catch-up source dies mid-sync must
  // abandon the change on the next FD tick — not abort the registry via
  // begin_change's non-empty-sources check.
  build(3, 1);
  send_batch(1, 10);
  env_.sim().run_for(from_millis(300));
  registry_->add_acceptor(0, 4);
  EXPECT_TRUE(registry_->change_pending(0));
  env_.crash(1);
  env_.crash(2);
  env_.crash(3);
  env_.sim().run_for(from_seconds(1));  // FD notices the dead sources
  EXPECT_FALSE(registry_->change_pending(0));
  EXPECT_EQ(registry_->current_view(0).total_acceptors, 3u);  // unchanged
}

TEST_F(ReconfigTest, CheckNowPollsCustomFdRings) {
  // Regression: a forced check must also poll rings that run their own
  // failure-detector timer chain (custom interval/jitter), not only the
  // rings on the registry-wide tick.
  coord::FdParams fd;
  fd.interval = from_seconds(10);  // first dedicated tick far in the future
  build(3, 0, fd);
  env_.crash(3);
  env_.sim().run_for(from_millis(100));
  EXPECT_TRUE(registry_->current_view(0).contains(3));  // not yet noticed
  registry_->check_now();
  EXPECT_FALSE(registry_->current_view(0).contains(3));
}

TEST_F(ReconfigTest, ChangeSequenceLosesNothing) {
  build(3, 2);  // learners 4 and 5
  send_batch(1, 10);
  env_.sim().run_for(from_millis(300));

  registry_->add_acceptor(0, 4);  // {1,2,3} -> {1,2,3,4}
  send_batch(2, 10);
  env_.sim().run_for(from_seconds(2));
  ASSERT_FALSE(registry_->change_pending(0));

  env_.crash(2);
  env_.sim().run_for(from_millis(200));
  registry_->replace_acceptor(0, 2, 5);  // {1,2,3,4} -> {1,3,4,5}
  send_batch(3, 10);
  env_.sim().run_for(from_seconds(2));
  ASSERT_FALSE(registry_->change_pending(0));

  registry_->remove_acceptor(0, 1);  // {1,3,4,5} -> {3,4,5}; 1 demoted
  send_batch(4, 10);
  env_.sim().run_for(from_seconds(3));

  const coord::RingView& v = registry_->current_view(0);
  EXPECT_EQ(v.configured_acceptors, (std::vector<ProcessId>{3, 4, 5}));
  expect_complete_and_consistent({1, 3, 4, 5});
}

TEST_F(ReconfigTest, AutoHealReplacesKilledAcceptorEndToEnd) {
  coord::FdParams fd;
  fd.auto_heal = true;
  fd.suspect_grace = 200 * kMillisecond;
  fd.jitter = 0.3;  // jittered suspicion, still deterministic under the seed
  build(3, 1, fd, {4});  // node 4: learner member + standby
  send_batch(1, 20);
  env_.sim().run_for(from_millis(300));

  env_.crash(2);  // permanent kill of a non-coordinator acceptor
  send_batch(1, 10);
  env_.sim().run_for(from_seconds(3));  // FD suspects, drafts 4, heals

  EXPECT_EQ(registry_->heal_count(), 1u);
  const coord::RingView& v = registry_->current_view(0);
  EXPECT_EQ(v.configured_acceptors, (std::vector<ProcessId>{1, 3, 4}));
  EXPECT_FALSE(v.contains(2));
  EXPECT_TRUE(node(4)->handler(0)->is_acceptor());

  send_batch(3, 10);
  env_.sim().run_for(from_seconds(2));
  expect_complete_and_consistent({1, 3, 4});
}

TEST_F(ReconfigTest, HealWaitsWhenNoStandbyAvailable) {
  coord::FdParams fd;
  fd.auto_heal = true;
  fd.suspect_grace = 100 * kMillisecond;
  build(3, 0, fd);  // no standby pool
  env_.crash(3);
  env_.sim().run_for(from_seconds(1));
  EXPECT_EQ(registry_->heal_count(), 0u);
  EXPECT_FALSE(registry_->change_pending(0));
  // The ring still makes progress on the surviving majority.
  send_batch(1, 10);
  env_.sim().run_for(from_seconds(1));
  expect_complete_and_consistent({1, 2});
}

}  // namespace
}  // namespace mrp
