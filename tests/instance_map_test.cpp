// InstanceMap is the flat container behind the coordinator's in-flight
// window, the learner's decision buffer, and the acceptor log. These tests
// pin its map semantics (insert/find/erase, ordered traversal) and the
// window mechanics (prefix trim, front/back invariants, below-base growth)
// against a std::map reference model.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/instance_map.hpp"
#include "common/rng.hpp"

namespace mrp {
namespace {

TEST(InstanceMap, StartsEmpty) {
  InstanceMap<int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.size(), 0u);
  EXPECT_FALSE(m.contains(0));
  EXPECT_EQ(m.find(42), nullptr);
}

TEST(InstanceMap, InsertFindErase) {
  InstanceMap<std::string> m;
  EXPECT_TRUE(m.insert(10, "a"));
  EXPECT_FALSE(m.insert(10, "dup"));  // only-if-absent
  m.insert_or_assign(10, "b");
  ASSERT_NE(m.find(10), nullptr);
  EXPECT_EQ(*m.find(10), "b");
  EXPECT_FALSE(m.contains(9));
  EXPECT_FALSE(m.contains(11));
  EXPECT_TRUE(m.erase(10));
  EXPECT_FALSE(m.erase(10));
  EXPECT_TRUE(m.empty());
}

TEST(InstanceMap, BracketDefaultConstructs) {
  InstanceMap<int> m;
  m[7] += 5;
  m[7] += 5;
  EXPECT_EQ(*m.find(7), 10);
  EXPECT_EQ(m.size(), 1u);
}

TEST(InstanceMap, FrontAndBackTrackOccupiedKeys) {
  InstanceMap<int> m;
  m.insert(100, 1);
  m.insert(105, 2);
  m.insert(103, 3);
  EXPECT_EQ(m.front_key(), 100u);
  EXPECT_EQ(m.back_key(), 105u);
  // Erasing the extremes shrinks the window to the next occupied slot.
  m.erase(100);
  EXPECT_EQ(m.front_key(), 103u);
  m.erase(105);
  EXPECT_EQ(m.back_key(), 103u);
  EXPECT_EQ(m.size(), 1u);
}

TEST(InstanceMap, PopFrontDrainsInKeyOrder) {
  InstanceMap<int> m;
  for (InstanceId k : {20u, 5u, 11u, 7u}) m.insert(k, static_cast<int>(k));
  std::vector<int> order;
  while (!m.empty()) order.push_back(m.pop_front());
  EXPECT_EQ(order, (std::vector<int>{5, 7, 11, 20}));
}

TEST(InstanceMap, GrowsBelowBase) {
  InstanceMap<int> m;
  m.insert(50, 50);
  m.insert(45, 45);  // below the current window base
  EXPECT_EQ(m.front_key(), 45u);
  EXPECT_EQ(*m.find(45), 45);
  EXPECT_EQ(*m.find(50), 50);
}

TEST(InstanceMap, EraseBelowTrimsPrefix) {
  InstanceMap<int> m;
  for (InstanceId k = 0; k < 100; ++k) m.insert(k, static_cast<int>(k));
  m.erase_below(60);
  EXPECT_EQ(m.size(), 40u);
  EXPECT_EQ(m.front_key(), 60u);
  EXPECT_FALSE(m.contains(59));
  m.erase_below(1000);  // past the end: empties the map
  EXPECT_TRUE(m.empty());
  m.insert(2000, 1);  // window re-bases cleanly after emptying
  EXPECT_EQ(m.front_key(), 2000u);
}

TEST(InstanceMap, FindLastBelow) {
  InstanceMap<int> m;
  m.insert(10, 1);
  m.insert(20, 2);
  InstanceId key = 0;
  EXPECT_EQ(m.find_last_below(10, &key), nullptr);  // nothing below 10
  const int* v = m.find_last_below(20, &key);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(key, 10u);
  EXPECT_EQ(*v, 1);
  v = m.find_last_below(1000, &key);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(key, 20u);
}

TEST(InstanceMap, RangeTraversals) {
  InstanceMap<int> m;
  for (InstanceId k : {3u, 5u, 9u, 12u}) m.insert(k, static_cast<int>(k));
  std::vector<InstanceId> keys;
  m.for_each_in(4, 12, [&](InstanceId k, const int&) { keys.push_back(k); });
  EXPECT_EQ(keys, (std::vector<InstanceId>{5, 9}));
  keys.clear();
  m.for_each_from(5, [&](InstanceId k, const int&) { keys.push_back(k); });
  EXPECT_EQ(keys, (std::vector<InstanceId>{5, 9, 12}));
  keys.clear();
  m.for_each([&](InstanceId k, int&) { keys.push_back(k); });
  EXPECT_EQ(keys, (std::vector<InstanceId>{3, 5, 9, 12}));
}

TEST(InstanceMap, MatchesMapReferenceModel) {
  // Random interleaving of the operations the protocol performs, checked
  // against std::map. Keys drift upward like real instance ids.
  InstanceMap<int> m;
  std::map<InstanceId, int> ref;
  Rng rng(2025);
  InstanceId floor = 0;
  for (int step = 0; step < 20000; ++step) {
    const InstanceId key = floor + rng.next_below(64);
    switch (rng.next_below(6)) {
      case 0:
      case 1: {
        const int v = static_cast<int>(rng.next_below(1000));
        m.insert_or_assign(key, v);
        ref[key] = v;
        break;
      }
      case 2: {
        EXPECT_EQ(m.erase(key), ref.erase(key) > 0);
        break;
      }
      case 3: {
        const int* found = m.find(key);
        auto it = ref.find(key);
        ASSERT_EQ(found != nullptr, it != ref.end());
        if (found != nullptr) {
          EXPECT_EQ(*found, it->second);
        }
        break;
      }
      case 4: {
        if (!ref.empty() && rng.next_below(8) == 0) {
          floor += rng.next_below(16);
          m.erase_below(floor);
          ref.erase(ref.begin(), ref.lower_bound(floor));
        }
        break;
      }
      case 5: {
        if (!ref.empty()) {
          ASSERT_FALSE(m.empty());
          EXPECT_EQ(m.front_key(), ref.begin()->first);
          EXPECT_EQ(m.back_key(), ref.rbegin()->first);
        }
        break;
      }
    }
    ASSERT_EQ(m.size(), ref.size());
  }
  // Drain both and compare the full ordered contents.
  for (auto& [k, v] : ref) {
    ASSERT_FALSE(m.empty());
    EXPECT_EQ(m.front_key(), k);
    EXPECT_EQ(m.pop_front(), v);
  }
  EXPECT_TRUE(m.empty());
}

}  // namespace
}  // namespace mrp
