#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "sim/env.hpp"

namespace mrp::sim {
namespace {

struct TestMsg final : Message {
  int payload = 0;
  std::size_t size = 100;
  int kind() const override { return 1; }
  std::size_t wire_size() const override { return size; }
};

/// Records everything it receives.
class Recorder : public Process {
 public:
  using Process::Process;
  void on_message(ProcessId from, const Message& m) override {
    received.emplace_back(from, msg_cast<TestMsg>(m).payload, now());
  }
  std::vector<std::tuple<ProcessId, int, TimeNs>> received;
};

MessagePtr mk(int payload, std::size_t size = 100) {
  auto m = std::make_shared<TestMsg>();
  m->payload = payload;
  m->size = size;
  return m;
}

TEST(Simulator, EventOrderingByTimeThenFifo) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(5, [&] { order.push_back(2); });
  sim.schedule_at(10, [&] { order.push_back(3); });  // same time: FIFO
  sim.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{2, 1, 3}));
  EXPECT_EQ(sim.now(), 10);
}

TEST(Simulator, OrderMatchesReferenceModel) {
  // The two-tier queue (near heap + far buffer) must pop in exactly
  // (when, seq) order — the FIFO-tie-break contract every deterministic
  // trace depends on. Compare against a stable-sorted reference, with
  // schedule times spanning both tiers and new events scheduled from
  // callbacks mid-run.
  Simulator sim;
  std::vector<int> fired;
  std::vector<std::pair<TimeNs, int>> scheduled;
  Rng rng(99);
  int next_tag = 0;
  for (int i = 0; i < 2000; ++i) {
    // Mix of near, far, and very-far times (exercises horizon advances).
    const TimeNs when = static_cast<TimeNs>(
        rng.next_below(3) == 0 ? rng.next_below(1000)
                               : rng.next_below(50) * kSecond);
    const int tag = next_tag++;
    scheduled.emplace_back(when, tag);
    sim.schedule_at(when, [&fired, &sim, &scheduled, &next_tag, tag] {
      fired.push_back(tag);
      // Every 8th event schedules a follow-up (tests mid-run pushes).
      if (tag % 8 == 0) {
        const TimeNs w = sim.now() + 1 + (tag % 1000) * kMicrosecond;
        const int t2 = next_tag++;
        scheduled.emplace_back(w, t2);
        sim.schedule_at(w, [&fired, t2] { fired.push_back(t2); });
      }
    });
  }
  sim.run_until_idle();
  // Reference order: stable sort by time (stability = FIFO by seq, since
  // tags are appended in scheduling order).
  std::stable_sort(scheduled.begin(), scheduled.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<int> want;
  for (auto& [w, tag] : scheduled) want.push_back(tag);
  EXPECT_EQ(fired, want);
  EXPECT_EQ(sim.executed_events(), fired.size());
}

TEST(Simulator, TaskInlineAndSlabPathsRunAndDestroy) {
  Simulator sim;
  // Move-only capture (unique_ptr) exercises the non-trivial inline path;
  // shared_ptr counts prove destruction of queued-but-unfired callables.
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> weak = token;
  int got = 0;
  sim.schedule_at(1, [p = std::make_unique<int>(5), &got] { got = *p; });
  struct Big {
    std::shared_ptr<int> keep;
    char pad[200];  // far past the inline budget: slab path
  };
  sim.schedule_at(2, [big = Big{token, {}}, &got] { got += *big.keep; });
  token.reset();
  EXPECT_FALSE(weak.expired());  // the queued slab capture still holds it
  sim.run_until_idle();
  EXPECT_EQ(got, 12);
  EXPECT_TRUE(weak.expired());  // executed tasks are destroyed
}

TEST(Simulator, ProcessWideEventCounterAdvances) {
  const std::uint64_t before = Simulator::process_executed_events();
  Simulator sim;
  for (int i = 0; i < 10; ++i) sim.schedule_at(i, [] {});
  sim.run_until_idle();
  EXPECT_GE(Simulator::process_executed_events(), before + 10);
}

TEST(Simulator, RunUntilAdvancesClockWithoutEvents) {
  Simulator sim;
  sim.run_until(1234);
  EXPECT_EQ(sim.now(), 1234);
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1, [&] {
    sim.schedule_after(1, [&] { ++fired; });
  });
  sim.run_until_idle();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 2);
}

TEST(Network, LatencyAppliedOneWay) {
  Env env;
  auto* a = env.spawn<Recorder>(1);
  (void)a;
  auto* b = env.spawn<Recorder>(2);
  env.net().set_default_link({from_millis(5), 1e12});
  env.send_from(1, 2, mk(7));
  env.sim().run_until_idle();
  ASSERT_EQ(b->received.size(), 1u);
  EXPECT_EQ(std::get<1>(b->received[0]), 7);
  EXPECT_GE(std::get<2>(b->received[0]), from_millis(5));
  EXPECT_LT(std::get<2>(b->received[0]), from_millis(5.2));
}

TEST(Network, BandwidthSerializesLargeMessages) {
  Env env;
  env.spawn<Recorder>(1);
  auto* b = env.spawn<Recorder>(2);
  // 1 MB/s => a 100 KB message takes 100 ms to transmit.
  env.net().set_default_link({0, 8e6});
  env.send_from(1, 2, mk(1, 100'000));
  env.send_from(1, 2, mk(2, 100'000));
  env.sim().run_until_idle();
  ASSERT_EQ(b->received.size(), 2u);
  EXPECT_NEAR(static_cast<double>(std::get<2>(b->received[0])),
              static_cast<double>(from_millis(100)), 1e6);
  EXPECT_NEAR(static_cast<double>(std::get<2>(b->received[1])),
              static_cast<double>(from_millis(200)), 1e6);
}

TEST(Network, FifoPerPair) {
  Env env;
  env.spawn<Recorder>(1);
  auto* b = env.spawn<Recorder>(2);
  env.net().set_default_link({from_millis(1), 1e9});
  for (int i = 0; i < 50; ++i) env.send_from(1, 2, mk(i, 1000));
  env.sim().run_until_idle();
  ASSERT_EQ(b->received.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(std::get<1>(b->received[i]), i);
}

TEST(Network, SiteLatencyMatrix) {
  Env env;
  env.spawn<Recorder>(1);
  auto* b = env.spawn<Recorder>(2);
  auto* c = env.spawn<Recorder>(3);
  env.net().set_site(1, 0);
  env.net().set_site(2, 0);
  env.net().set_site(3, 1);
  env.net().set_site_local_latency(0, from_micros(50));
  env.net().set_site_latency(0, 1, from_millis(40));
  env.send_from(1, 2, mk(1, 10));
  env.send_from(1, 3, mk(2, 10));
  env.sim().run_until_idle();
  ASSERT_EQ(b->received.size(), 1u);
  ASSERT_EQ(c->received.size(), 1u);
  EXPECT_LT(std::get<2>(b->received[0]), from_millis(1));
  EXPECT_GE(std::get<2>(c->received[0]), from_millis(40));
}

TEST(Network, PartitionDropsTraffic) {
  Env env;
  env.spawn<Recorder>(1);
  auto* b = env.spawn<Recorder>(2);
  env.net().set_partitioned(1, 2, true);
  env.send_from(1, 2, mk(1));
  env.sim().run_until_idle();
  EXPECT_TRUE(b->received.empty());
  env.net().set_partitioned(1, 2, false);
  env.send_from(1, 2, mk(2));
  env.sim().run_until_idle();
  EXPECT_EQ(b->received.size(), 1u);
}

TEST(Env, CrashDropsQueuedAndInFlight) {
  Env env;
  env.spawn<Recorder>(1);
  auto* b = env.spawn<Recorder>(2);
  env.net().set_default_link({from_millis(10), 1e12});
  env.send_from(1, 2, mk(1));
  env.sim().run_for(from_millis(1));
  env.crash(2);  // message still in flight
  env.sim().run_until_idle();
  (void)b;  // b is dangling after crash; nothing delivered anywhere
  env.recover(2);
  auto* b2 = env.process_as<Recorder>(2);
  EXPECT_TRUE(b2->received.empty());
}

TEST(Env, TimersCancelledOnCrash) {
  Env env;
  auto* a = env.spawn<Recorder>(1);
  int fired = 0;
  a->after(from_millis(10), [&] { ++fired; });
  env.crash(1);
  env.sim().run_until_idle();
  EXPECT_EQ(fired, 0);
}

TEST(Env, RepeatingTimerSurvivesUntilCrash) {
  Env env;
  auto* a = env.spawn<Recorder>(1);
  int fired = 0;
  a->every(from_millis(10), [&] { ++fired; });
  env.sim().run_until(from_millis(55));
  EXPECT_EQ(fired, 5);
  env.crash(1);
  env.sim().run_until(from_millis(200));
  EXPECT_EQ(fired, 5);
}

TEST(Env, StableStorageSurvivesCrash) {
  Env env;
  env.spawn<Recorder>(1);
  env.stable<int>(1, "counter") = 41;
  env.crash(1);
  env.recover(1);
  EXPECT_EQ(env.stable<int>(1, "counter"), 41);
}

TEST(Env, CpuModelSerializesHandling) {
  Env env;
  env.spawn<Recorder>(1);
  auto* b = env.spawn<Recorder>(2);
  env.set_cpu(2, CpuParams{from_millis(10), 0});
  env.net().set_default_link({0, 1e18});
  env.send_from(1, 2, mk(1));
  env.send_from(1, 2, mk(2));
  env.send_from(1, 2, mk(3));
  env.sim().run_until_idle();
  ASSERT_EQ(b->received.size(), 3u);
  // First handled immediately; the rest wait for the 10 ms service times.
  EXPECT_LT(std::get<2>(b->received[0]), from_millis(1));
  EXPECT_GE(std::get<2>(b->received[1]), from_millis(10));
  EXPECT_GE(std::get<2>(b->received[2]), from_millis(20));
  EXPECT_EQ(env.cpu_busy(2), from_millis(30));
}

TEST(Env, PerByteCpuCost) {
  Env env;
  env.spawn<Recorder>(1);
  env.spawn<Recorder>(2);
  env.set_cpu(2, CpuParams{0, 1.0});  // 1 ns per byte
  env.send_from(1, 2, mk(1, 1'000'000));
  env.sim().run_until_idle();
  EXPECT_EQ(env.cpu_busy(2), 1'000'000);
}

TEST(Env, RecoverReconstructsFromFactory) {
  Env env;
  auto* a = env.spawn<Recorder>(1);
  a->received.emplace_back(0, 0, 0);  // volatile state
  env.crash(1);
  env.recover(1);
  EXPECT_TRUE(env.process_as<Recorder>(1)->received.empty());
  EXPECT_EQ(env.epoch(1), 3u);  // spawn=1, crash=2, recover=3
}

TEST(Env, GuardSuppressesStaleCallbacks) {
  Env env;
  auto* a = env.spawn<Recorder>(1);
  int fired = 0;
  auto g = a->guard([&] { ++fired; });
  env.crash(1);
  env.recover(1);
  g();  // stale epoch: must not fire
  EXPECT_EQ(fired, 0);
}

TEST(Disk, SyncWriteLatency) {
  Env env;
  env.set_disk_params(1, 0, DiskParams::hdd());
  env.spawn<Recorder>(1);
  TimeNs done_at = -1;
  env.disk(1, 0).write(150'000'000 / 1000, [&] { done_at = env.now(); });
  env.sim().run_until_idle();
  // 8 ms seek + 1 ms transfer (150 KB at 150 MB/s).
  EXPECT_NEAR(static_cast<double>(done_at),
              static_cast<double>(from_millis(9)), 1e6);
}

TEST(Disk, WritesQueue) {
  Env env;
  env.set_disk_params(1, 0, DiskParams{from_millis(5), 1e18});
  env.spawn<Recorder>(1);
  std::vector<TimeNs> done;
  for (int i = 0; i < 3; ++i) {
    env.disk(1, 0).write(10, [&] { done.push_back(env.now()); });
  }
  env.sim().run_until_idle();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0], from_millis(5));
  EXPECT_EQ(done[1], from_millis(10));
  EXPECT_EQ(done[2], from_millis(15));
}

TEST(Disk, SurvivesOwnerCrash) {
  Env env;
  env.spawn<Recorder>(1);
  env.disk(1, 0).write(100, nullptr);
  env.crash(1);
  env.recover(1);
  EXPECT_EQ(env.disk(1, 0).writes(), 1u);
}

TEST(Determinism, SameSeedSameExecution) {
  auto run = [](std::uint64_t seed) {
    Env env(seed);
    env.spawn<Recorder>(1);
    auto* b = env.spawn<Recorder>(2);
    env.net().set_default_link({from_micros(50), 1e10});
    for (int i = 0; i < 100; ++i) {
      env.send_from(1, 2, mk(static_cast<int>(env.rng().next_below(1000))));
    }
    env.sim().run_until_idle();
    std::vector<int> payloads;
    for (auto& [f, p, t] : b->received) payloads.push_back(p);
    return payloads;
  };
  EXPECT_EQ(run(77), run(77));
  EXPECT_NE(run(77), run(78));
}

}  // namespace
}  // namespace mrp::sim
