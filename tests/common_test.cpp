#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/histogram.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace mrp {
namespace {

TEST(Types, TimeConversions) {
  EXPECT_EQ(from_millis(1.0), kMillisecond);
  EXPECT_EQ(from_micros(1.0), kMicrosecond);
  EXPECT_EQ(from_seconds(1.0), kSecond);
  EXPECT_DOUBLE_EQ(to_seconds(kSecond), 1.0);
  EXPECT_DOUBLE_EQ(to_millis(kMillisecond), 1.0);
}

TEST(Types, PayloadSharing) {
  Payload a(to_bytes("hello"));
  Payload b = a;  // shares the buffer
  EXPECT_EQ(a.size(), 5u);
  EXPECT_EQ(b.as_string(), "hello");
  EXPECT_TRUE(a == b);
}

TEST(Types, ValueIdOrdering) {
  ValueId a{1, 5};
  ValueId b{1, 6};
  ValueId c{2, 1};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (ValueId{1, 5}));
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, NextBelowInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
  }
}

TEST(Rng, NextRangeInclusive) {
  Rng r(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.next_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng r(11);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += r.next_exponential(5.0);
  EXPECT_NEAR(sum / 20000, 5.0, 0.2);
}

TEST(Rng, ForkIndependent) {
  Rng a(3);
  Rng b = a.fork();
  // Forked stream should not mirror the parent.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Histogram, BasicStats) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.record(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 100);
  EXPECT_NEAR(h.mean(), 50.5, 0.01);
}

TEST(Histogram, QuantilesWithinRelativeError) {
  Histogram h;
  for (int i = 1; i <= 100000; ++i) h.record(i);
  // 5 sub-bucket bits => <= ~3.1% relative error.
  EXPECT_NEAR(static_cast<double>(h.quantile(0.5)), 50000.0, 50000 * 0.04);
  EXPECT_NEAR(static_cast<double>(h.quantile(0.99)), 99000.0, 99000 * 0.04);
  EXPECT_EQ(h.quantile(0.0), 1);
  EXPECT_EQ(h.quantile(1.0), 100000);
}

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_TRUE(h.cdf().empty());
}

TEST(Histogram, Merge) {
  Histogram a, b;
  for (int i = 0; i < 100; ++i) a.record(10);
  for (int i = 0; i < 100; ++i) b.record(1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 1000);
}

TEST(Histogram, CdfMonotone) {
  Histogram h;
  Rng r(5);
  for (int i = 0; i < 10000; ++i) {
    h.record(static_cast<std::int64_t>(r.next_below(1'000'000)));
  }
  auto cdf = h.cdf();
  ASSERT_FALSE(cdf.empty());
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].first, cdf[i - 1].first);
    EXPECT_GE(cdf[i].second, cdf[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(Histogram, PowerOfTwoBoundariesWithinRelativeError) {
  // Values at bucket-group boundaries (exact powers of two) must report
  // back within the configured relative error (2^-5 for the default).
  for (int k = 1; k <= 40; ++k) {
    Histogram h;
    const std::int64_t v = 1LL << k;
    h.record(v);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_NEAR(static_cast<double>(h.quantile(0.5)), static_cast<double>(v),
                static_cast<double>(v) / 32.0 + 1)
        << "k=" << k;
  }
}

TEST(Histogram, SubBucketEdgesResolve) {
  // Two values one sub-bucket apart (v and v + v/2^5) land in different
  // buckets: the CDF keeps them distinguishable.
  Histogram h;
  const std::int64_t v = 1 << 20;
  h.record(v);
  h.record(v + (v >> 5));
  const auto cdf = h.cdf();
  ASSERT_EQ(cdf.size(), 2u);
  EXPECT_LT(cdf[0].first, cdf[1].first);
  EXPECT_DOUBLE_EQ(cdf[0].second, 0.5);
  EXPECT_DOUBLE_EQ(cdf[1].second, 1.0);
  // Values inside the same sub-bucket collapse into one point.
  Histogram same;
  same.record(v);
  same.record(v + 1);
  EXPECT_EQ(same.cdf().size(), 1u);
}

TEST(Histogram, ClampsAtTopBucket) {
  Histogram h;
  h.record(std::numeric_limits<std::int64_t>::max());
  h.record(std::numeric_limits<std::int64_t>::max() - 1);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), std::numeric_limits<std::int64_t>::max());
  // Reported quantiles clamp to the observed range, never overflow.
  EXPECT_EQ(h.quantile(1.0), std::numeric_limits<std::int64_t>::max());
  EXPECT_GE(h.quantile(0.5), h.min());
  EXPECT_LE(h.quantile(0.5), h.max());
}

TEST(Histogram, RecordNMatchesRepeatedRecord) {
  Histogram a, b;
  Rng rng(31);
  for (int i = 0; i < 200; ++i) {
    const auto v = static_cast<std::int64_t>(rng.next_below(1'000'000));
    const std::uint64_t n = rng.next_below(16) + 1;
    a.record_n(v, n);
    for (std::uint64_t j = 0; j < n; ++j) b.record(v);
  }
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
  EXPECT_DOUBLE_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.cdf(), b.cdf());
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_EQ(a.quantile(q), b.quantile(q));
  }
}

TEST(Histogram, RecordNZeroIsNoOp) {
  Histogram h;
  h.record_n(123, 0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_TRUE(h.cdf().empty());
}

TEST(Histogram, RecordNegativeClampsToZero) {
  Histogram h;
  h.record(-5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.quantile(0.5), 0);
}

TEST(Timeline, WindowsAndRates) {
  ThroughputTimeline t(kSecond);
  t.record(0);
  t.record(kSecond / 2);
  t.record(kSecond + 1);
  t.record(3 * kSecond);
  auto s = t.series();
  ASSERT_EQ(s.size(), 4u);
  EXPECT_DOUBLE_EQ(s[0], 2.0);
  EXPECT_DOUBLE_EQ(s[1], 1.0);
  EXPECT_DOUBLE_EQ(s[2], 0.0);
  EXPECT_DOUBLE_EQ(s[3], 1.0);
}

TEST(Meter, Rates) {
  Meter m;
  for (int i = 0; i < 1000; ++i) m.record(125);  // 125 B => 1000 bits
  m.set_interval(0, kSecond);
  EXPECT_DOUBLE_EQ(m.ops_per_sec(), 1000.0);
  EXPECT_DOUBLE_EQ(m.megabits_per_sec(), 1.0);
}

}  // namespace
}  // namespace mrp
