#include <gtest/gtest.h>

#include "sim/env.hpp"
#include "storage/acceptor_log.hpp"
#include "storage/checkpoint_store.hpp"

namespace mrp::storage {
namespace {

class Noop : public sim::Process {
 public:
  using Process::Process;
  void on_message(ProcessId, const sim::Message&) override {}
};

paxos::LogRecord rec(Round r, const std::string& v, bool decided = false) {
  paxos::LogRecord lr;
  lr.vround = r;
  lr.value.payload = Payload(v);
  lr.decided = decided;
  return lr;
}

class AcceptorLogTest : public ::testing::Test {
 protected:
  AcceptorLogTest() { env_.spawn<Noop>(1); }
  sim::Env env_;
};

TEST_F(AcceptorLogTest, PutGetRoundtrip) {
  AcceptorLog log(env_, 1, 0, WriteMode::Memory);
  log.accept(5, rec(1, "five"), nullptr);
  auto got = log.get(5);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->value.payload.as_string(), "five");
  EXPECT_FALSE(log.get(4).has_value());
}

TEST_F(AcceptorLogTest, PromisePersistsAndMonotone) {
  AcceptorLog log(env_, 1, 0, WriteMode::Memory);
  log.promise(3, nullptr);
  EXPECT_EQ(log.promised(), 3u);
  log.promise(7, nullptr);
  EXPECT_EQ(log.promised(), 7u);
}

TEST_F(AcceptorLogTest, SurvivesCrashRecover) {
  {
    AcceptorLog log(env_, 1, 0, WriteMode::Memory);
    log.promise(2, nullptr);
    log.accept(1, rec(2, "one", true), nullptr);
    log.accept(2, rec(2, "two"), nullptr);
  }
  env_.crash(1);
  env_.recover(1);
  AcceptorLog log2(env_, 1, 0, WriteMode::Memory);
  EXPECT_EQ(log2.promised(), 2u);
  EXPECT_EQ(log2.record_count(), 2u);
  EXPECT_TRUE(log2.get(1)->decided);
}

TEST_F(AcceptorLogTest, SeparateRingsSeparateLogs) {
  AcceptorLog a(env_, 1, 0, WriteMode::Memory);
  AcceptorLog b(env_, 1, 1, WriteMode::Memory);
  a.accept(0, rec(1, "ring0"), nullptr);
  EXPECT_EQ(b.record_count(), 0u);
}

TEST_F(AcceptorLogTest, HigherRoundOverwrites) {
  AcceptorLog log(env_, 1, 0, WriteMode::Memory);
  log.accept(0, rec(1, "old"), nullptr);
  log.accept(0, rec(5, "new"), nullptr);
  EXPECT_EQ(log.get(0)->value.payload.as_string(), "new");
  EXPECT_EQ(log.get(0)->vround, 5u);
}

TEST_F(AcceptorLogTest, DecidedRecordsAreImmutable) {
  AcceptorLog log(env_, 1, 0, WriteMode::Memory);
  log.accept(0, rec(1, "final", true), nullptr);
  log.accept(0, rec(9, "attacker"), nullptr);  // ignored: already decided
  EXPECT_EQ(log.get(0)->value.payload.as_string(), "final");
  EXPECT_TRUE(log.get(0)->decided);
}

TEST_F(AcceptorLogTest, TrimRemovesBelow) {
  AcceptorLog log(env_, 1, 0, WriteMode::Memory);
  for (InstanceId i = 0; i < 10; ++i) {
    log.accept(i, rec(1, "v" + std::to_string(i), true), nullptr);
  }
  log.trim(6);
  EXPECT_EQ(log.trimmed_to(), 6u);
  EXPECT_EQ(log.record_count(), 4u);
  EXPECT_FALSE(log.get(5).has_value());
  EXPECT_TRUE(log.get(6).has_value());
  // Trimming backwards is a no-op.
  log.trim(3);
  EXPECT_EQ(log.trimmed_to(), 6u);
}

TEST_F(AcceptorLogTest, RangeQuery) {
  AcceptorLog log(env_, 1, 0, WriteMode::Memory);
  for (InstanceId i = 0; i < 10; i += 2) {
    log.accept(i, rec(1, "e"), nullptr);
  }
  auto r = log.range(2, 8);
  ASSERT_EQ(r.size(), 3u);  // 2, 4, 6
  EXPECT_EQ(r[0].first, 2u);
  EXPECT_EQ(r[2].first, 6u);
}

TEST_F(AcceptorLogTest, PromisesFromFloor) {
  AcceptorLog log(env_, 1, 0, WriteMode::Memory);
  for (InstanceId i = 0; i < 6; ++i) log.accept(i, rec(2, "p"), nullptr);
  auto ps = log.promises_from(4);
  ASSERT_EQ(ps.size(), 2u);
  EXPECT_EQ(ps[0].instance, 4u);
  EXPECT_EQ(ps[0].vround, 2u);
}

TEST_F(AcceptorLogTest, SyncModeWaitsForDisk) {
  env_.set_disk_params(1, 0, sim::DiskParams{from_millis(5), 1e18});
  AcceptorLog log(env_, 1, 0, WriteMode::Sync);
  TimeNs acked = -1;
  log.accept(0, rec(1, "slow"), [&] { acked = env_.now(); });
  env_.sim().run_until_idle();
  EXPECT_EQ(acked, from_millis(5));
}

TEST_F(AcceptorLogTest, AsyncModeAcksImmediately) {
  env_.set_disk_params(1, 1, sim::DiskParams{from_millis(5), 1e18});
  AcceptorLog log(env_, 1, 0, WriteMode::Async, 1);
  TimeNs acked = -1;
  log.accept(0, rec(1, "fast"), [&] { acked = env_.now(); });
  EXPECT_EQ(acked, 0);                      // acked before the device write
  env_.sim().run_until_idle();
  EXPECT_EQ(env_.disk(1, 1).writes(), 1u);  // but the write still happened
}

TEST(TupleOrder, ComponentwiseComparison) {
  CheckpointTuple a{{1, 5}, {2, 3}};
  CheckpointTuple b{{1, 6}, {2, 3}};
  CheckpointTuple c{{1, 4}, {2, 9}};
  EXPECT_TRUE(tuple_leq(a, b));
  EXPECT_FALSE(tuple_leq(b, a));
  EXPECT_FALSE(tuple_leq(a, c));  // incomparable
  EXPECT_FALSE(tuple_leq(c, a));
  EXPECT_TRUE(tuple_leq(a, a));
}

class CheckpointStoreTest : public ::testing::Test {
 protected:
  CheckpointStoreTest() { env_.spawn<Noop>(7); }
  sim::Env env_;
};

TEST_F(CheckpointStoreTest, SaveAndLatest) {
  CheckpointStore cs(env_, 7);
  EXPECT_FALSE(cs.latest().has_value());
  Checkpoint cp;
  cp.next = {{0, 10}};
  cp.state = to_bytes("state1");
  cs.save(cp, nullptr);
  env_.sim().run_until_idle();
  ASSERT_TRUE(cs.latest().has_value());
  EXPECT_EQ(cs.latest()->next.at(0), 10u);
  EXPECT_EQ(cs.latest()->sequence, 1u);
}

TEST_F(CheckpointStoreTest, KeepsOnlyMostRecent) {
  CheckpointStore cs(env_, 7);
  for (int i = 1; i <= 3; ++i) {
    Checkpoint cp;
    cp.next = {{0, static_cast<InstanceId>(i * 10)}};
    cs.save(cp, nullptr);
  }
  env_.sim().run_until_idle();
  EXPECT_EQ(cs.latest()->next.at(0), 30u);
  EXPECT_EQ(cs.saves(), 3u);
}

TEST_F(CheckpointStoreTest, SurvivesCrash) {
  {
    CheckpointStore cs(env_, 7);
    Checkpoint cp;
    cp.next = {{0, 42}};
    cp.state = to_bytes("snap");
    cs.save(cp, nullptr);
    env_.sim().run_until_idle();
  }
  env_.crash(7);
  env_.recover(7);
  CheckpointStore cs2(env_, 7);
  ASSERT_TRUE(cs2.latest().has_value());
  EXPECT_EQ(cs2.latest()->next.at(0), 42u);
  EXPECT_EQ(mrp::to_string(cs2.latest()->state), "snap");
}

TEST_F(CheckpointStoreTest, SaveCallbackAfterDiskWrite) {
  env_.set_disk_params(7, 0, sim::DiskParams{from_millis(3), 1e18});
  CheckpointStore cs(env_, 7);
  Checkpoint cp;
  cp.state = Bytes(1000, 1);
  TimeNs done = -1;
  cs.save(cp, [&] { done = env_.now(); });
  env_.sim().run_until_idle();
  EXPECT_EQ(done, from_millis(3));
}

}  // namespace
}  // namespace mrp::storage
