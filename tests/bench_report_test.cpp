// Asserts that BenchReporter emits well-formed JSON with the documented
// schema (bench name, config, per-row metrics, p50/p99 latency from a
// Histogram). Uses a self-contained recursive-descent JSON parser so the
// file's parseability is checked for real, not by substring search.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/histogram.hpp"

namespace mrp {
namespace {

// --- Minimal JSON parser ---------------------------------------------------

struct Json {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<Json> arr;
  std::map<std::string, Json> obj;

  const Json& at(const std::string& key) const {
    auto it = obj.find(key);
    if (it == obj.end()) {
      ADD_FAILURE() << "missing key: " << key;
      static const Json null;
      return null;
    }
    return it->second;
  }
  bool has(const std::string& key) const { return obj.count(key) > 0; }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool parse(Json* out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\n' ||
                                s_[pos_] == '\t' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  bool string(std::string* out) {
    if (!consume('"')) return false;
    out->clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        char esc = s_[pos_++];
        switch (esc) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'n': *out += '\n'; break;
          case 't': *out += '\t'; break;
          case 'r': *out += '\r'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return false;
            pos_ += 4;  // keep the test simple: skip the code point
            *out += '?';
            break;
          }
          default: return false;
        }
      } else {
        *out += c;
      }
    }
    return consume('"');
  }

  bool number(double* out) {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    try {
      *out = std::stod(s_.substr(start, pos_ - start));
    } catch (...) {
      return false;
    }
    return true;
  }

  bool value(Json* out) {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') return object(out);
    if (c == '[') return array(out);
    if (c == '"') {
      out->kind = Json::Kind::String;
      return string(&out->str);
    }
    if (c == 't') {
      out->kind = Json::Kind::Bool;
      out->b = true;
      return literal("true");
    }
    if (c == 'f') {
      out->kind = Json::Kind::Bool;
      out->b = false;
      return literal("false");
    }
    if (c == 'n') {
      out->kind = Json::Kind::Null;
      return literal("null");
    }
    out->kind = Json::Kind::Number;
    return number(&out->num);
  }

  bool object(Json* out) {
    out->kind = Json::Kind::Object;
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!string(&key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      Json v;
      if (!value(&v)) return false;
      out->obj.emplace(std::move(key), std::move(v));
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  bool array(Json* out) {
    out->kind = Json::Kind::Array;
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      Json v;
      if (!value(&v)) return false;
      out->arr.push_back(std::move(v));
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// --- Tests -----------------------------------------------------------------

// Reporters flush to disk on destruction; point them at the test temp dir
// so test-scoped reporters don't litter the working directory.
class BenchOutTempDir : public ::testing::Environment {
 public:
  void SetUp() override {
    setenv("MRP_BENCH_OUT", ::testing::TempDir().c_str(), 1);
  }
};
const auto* const kBenchOutEnv =
    ::testing::AddGlobalTestEnvironment(new BenchOutTempDir);

Histogram synthetic_histogram() {
  Histogram h;
  // 1..100 ms in simulated nanoseconds: p50 ~ 50 ms, p99 ~ 99 ms.
  for (int ms = 1; ms <= 100; ++ms) h.record(ms * 1'000'000LL);
  return h;
}

bench::BenchReporter synthetic_reporter(const std::string& name) {
  bench::BenchReporter rep(name);
  rep.config("proposer_threads", 10);
  rep.config("network", "cluster");
  rep.row("sync-hdd/512")
      .tag("mode", "sync-hdd")
      .metric("size_bytes", 512)
      .metric("throughput_mbps", 123.5)
      .latency(synthetic_histogram());
  rep.row("memory/512").metric("throughput_mbps", 456.25);
  return rep;
}

TEST(BenchReporter, EmitsParseableJson) {
  auto rep = synthetic_reporter("unit");
  Json doc;
  ASSERT_TRUE(JsonParser(rep.json()).parse(&doc)) << rep.json();
  EXPECT_EQ(doc.kind, Json::Kind::Object);
}

TEST(BenchReporter, TopLevelSchema) {
  auto rep = synthetic_reporter("unit");
  Json doc;
  ASSERT_TRUE(JsonParser(rep.json()).parse(&doc));
  EXPECT_EQ(doc.at("bench").str, "unit");
  EXPECT_EQ(doc.at("schema_version").num, 2);
  // Engine-speed fields are always present (schema v2).
  EXPECT_GE(doc.at("wall_seconds").num, 0);
  EXPECT_GE(doc.at("sim_events").num, 0);
  EXPECT_GE(doc.at("events_per_second").num, 0);
  EXPECT_EQ(doc.at("config").at("proposer_threads").num, 10);
  EXPECT_EQ(doc.at("config").at("network").str, "cluster");
  ASSERT_EQ(doc.at("rows").arr.size(), 2u);
}

TEST(BenchReporter, RowMetricsAndLatency) {
  auto rep = synthetic_reporter("unit");
  Json doc;
  ASSERT_TRUE(JsonParser(rep.json()).parse(&doc));

  const Json& row = doc.at("rows").arr[0];
  EXPECT_EQ(row.at("label").str, "sync-hdd/512");
  EXPECT_EQ(row.at("metrics").at("mode").str, "sync-hdd");
  EXPECT_EQ(row.at("metrics").at("size_bytes").num, 512);
  EXPECT_DOUBLE_EQ(row.at("metrics").at("throughput_mbps").num, 123.5);

  const Json& lat = row.at("latency");
  EXPECT_EQ(lat.at("count").num, 100);
  // Histogram buckets have bounded relative error (2^-5 by default).
  EXPECT_NEAR(lat.at("p50_ms").num, 50.0, 50.0 * 0.05);
  EXPECT_NEAR(lat.at("p99_ms").num, 99.0, 99.0 * 0.05);
  EXPECT_GT(lat.at("mean_ms").num, 0);
  const Json& cdf = lat.at("cdf_ms");
  ASSERT_EQ(cdf.kind, Json::Kind::Array);
  ASSERT_FALSE(cdf.arr.empty());
  EXPECT_EQ(cdf.arr[0].arr.size(), 2u);
  EXPECT_DOUBLE_EQ(cdf.arr.back().arr[1].num, 1.0);

  // Second row: metrics only, no latency block.
  EXPECT_FALSE(doc.at("rows").arr[1].has("latency"));
}

TEST(BenchReporter, EscapesStringsAndNonFiniteNumbers) {
  bench::BenchReporter rep("escape");
  rep.config("note", "line1\nline2 \"quoted\" back\\slash");
  rep.row("nan-row").metric("bad", std::nan(""));
  Json doc;
  ASSERT_TRUE(JsonParser(rep.json()).parse(&doc));
  EXPECT_EQ(doc.at("config").at("note").str,
            "line1\nline2 \"quoted\" back\\slash");
  EXPECT_EQ(doc.at("rows").arr[0].at("metrics").at("bad").kind,
            Json::Kind::Null);
}

TEST(BenchReporter, CountsSimEventsExecutedWhileAlive) {
  bench::BenchReporter rep("events");
  sim::Simulator s(1);
  for (int i = 0; i < 100; ++i) s.schedule_at(i, [] {});
  s.run_until_idle();
  Json doc;
  ASSERT_TRUE(JsonParser(rep.json()).parse(&doc));
  EXPECT_GE(doc.at("sim_events").num, 100);
}

TEST(BenchReporter, EmptyReporterStillParses) {
  bench::BenchReporter rep("empty");
  Json doc;
  ASSERT_TRUE(JsonParser(rep.json()).parse(&doc));
  EXPECT_EQ(doc.at("rows").arr.size(), 0u);
  EXPECT_EQ(doc.at("config").kind, Json::Kind::Object);
}

TEST(BenchReporter, WritesFileToMrpBenchOut) {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  std::string dir = ::testing::TempDir();  // kBenchOutEnv set MRP_BENCH_OUT
  {
    auto rep = synthetic_reporter(info->name());
    EXPECT_TRUE(rep.write());
  }

  if (dir.back() != '/') dir += '/';
  const std::string path = dir + "BENCH_" + info->name() + ".json";
  std::ifstream f(path);
  ASSERT_TRUE(f.is_open()) << path;
  std::stringstream ss;
  ss << f.rdbuf();
  Json doc;
  EXPECT_TRUE(JsonParser(ss.str()).parse(&doc));
  EXPECT_EQ(doc.at("bench").str, info->name());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mrp
